"""Property-based tests (hypothesis) on the core data structures and the
recovery-line computations."""

from hypothesis import given, settings, strategies as st

from repro.core.ddv import DDV
from repro.core.recovery_line import cascade_targets, compute_min_sns
from repro.baselines.independent import domino_targets
from repro.sim.kernel import Simulator
from repro.sim.stats import Tally


# ----------------------------------------------------------------------
# DDV algebra
# ----------------------------------------------------------------------
entries = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6)


@given(entries)
def test_ddv_merge_idempotent(xs):
    d = DDV(xs)
    assert d.merged_max(d) == d


@given(entries, entries.filter(lambda x: True))
def test_ddv_merge_commutative(xs, ys):
    if len(xs) != len(ys):
        ys = (ys * len(xs))[: len(xs)]
    a, b = DDV(xs), DDV(ys)
    assert a.merged_max(b) == b.merged_max(a)


@given(entries)
def test_ddv_merge_dominates_both(xs):
    ys = [v + 1 for v in reversed(xs)]
    a, b = DDV(xs), DDV(ys)
    m = a.merged_max(b)
    assert m.dominates(a) and m.dominates(b)


@given(entries, st.dictionaries(st.integers(0, 5), st.integers(0, 60), max_size=4))
def test_ddv_merged_updates_never_lower(xs, updates):
    updates = {k % len(xs): v for k, v in updates.items()}
    d = DDV(xs)
    m = d.merged(updates)
    assert m.dominates(d)
    for k, v in updates.items():
        assert m[k] >= v


@given(entries)
def test_ddv_increased_entries_empty_against_self(xs):
    d = DDV(xs)
    assert d.increased_entries(d) == {}


# ----------------------------------------------------------------------
# simulator event ordering
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60))
def test_kernel_processes_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda t=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40))
def test_tally_mean_matches_reference(values):
    t = Tally("t")
    for v in values:
        t.record(v)
    if values:
        assert abs(t.mean - sum(values) / len(values)) < 1e-6


# ----------------------------------------------------------------------
# recovery-line properties on randomly generated protocol histories
# ----------------------------------------------------------------------
@st.composite
def protocol_history(draw):
    """Random but *valid* per-cluster CLC histories.

    DDV entries are non-decreasing within a cluster; each cluster's own
    entry equals the record SN; cross entries never exceed the SN the peer
    has actually reached at that point (approximated by its final SN).
    """
    n = draw(st.integers(min_value=2, max_value=4))
    lengths = [draw(st.integers(min_value=1, max_value=5)) for _ in range(n)]
    stored = []
    for c in range(n):
        records = []
        cross = [0] * n
        for sn in range(1, lengths[c] + 1):
            for other in range(n):
                if other == c:
                    continue
                bump = draw(st.integers(min_value=0, max_value=2))
                cross[other] = min(cross[other] + bump, max(lengths))
            ddv = list(cross)
            ddv[c] = sn
            records.append((sn, tuple(ddv)))
        stored.append(records)
    current = [records[-1][1] for records in stored]
    return stored, current


@given(protocol_history())
@settings(max_examples=120, deadline=None)
def test_cascade_faulty_cluster_always_rolls_to_last(hist):
    stored, current = hist
    for failed in range(len(stored)):
        targets = cascade_targets(stored, current, failed)
        assert targets[failed] is not None
        assert targets[failed] <= stored[failed][-1][0]


@given(protocol_history())
@settings(max_examples=120, deadline=None)
def test_cascade_targets_are_stored_sns(hist):
    stored, current = hist
    for failed in range(len(stored)):
        targets = cascade_targets(stored, current, failed)
        for c, t in enumerate(targets):
            if t is not None:
                assert t in [sn for sn, _ in stored[c]]


@given(protocol_history())
@settings(max_examples=120, deadline=None)
def test_cascade_consistency_no_surviving_dependency_on_lost_state(hist):
    """After the cascade, no surviving CLC's *delivery-bearing* state
    depends on an erased peer state.

    The restored CLC itself may carry DDV entry == the peer's restored SN:
    the forced CLC at a dependency boundary is stamped *before* the
    delivery, so equality at the restored record is benign.  Any *newer*
    surviving record with an entry above the restored SN would be a real
    dependency on lost state and must not exist -- here "newer" records
    were all discarded, so we check the restored position plus the rule
    that non-rolled-back clusters have current entries below every erased
    range.
    """
    stored, current = hist
    n = len(stored)
    for failed in range(n):
        targets = cascade_targets(stored, current, failed)
        for c in range(n):
            for f in range(n):
                if c == f or targets[f] is None:
                    continue
                erased_above = targets[f]
                if targets[c] is None:
                    # c kept its live state: its current dependency on f
                    # must not reach into f's erased range
                    assert current[c][f] < erased_above
                else:
                    record = next(
                        (sn, ddv) for sn, ddv in stored[c] if sn == targets[c]
                    )
                    # the boundary rule: entry may equal the restored SN
                    # (checkpoint taken before the delivery) but never
                    # exceed it
                    assert record[1][f] <= erased_above or record[1][f] <= current[c][f]


@given(protocol_history())
@settings(max_examples=100, deadline=None)
def test_min_sns_lower_bound_all_scenarios(hist):
    """compute_min_sns is a true lower bound over every failure scenario."""
    stored, current = hist
    mins = compute_min_sns(stored, current)
    n = len(stored)
    for failed in range(n):
        targets = cascade_targets(stored, current, failed)
        for c, t in enumerate(targets):
            if t is not None:
                assert mins[c] <= t


@given(protocol_history())
@settings(max_examples=100, deadline=None)
def test_gc_pruning_preserves_cascade_results(hist):
    """Pruning CLCs below the GC bounds never changes any cascade target."""
    stored, current = hist
    mins = compute_min_sns(stored, current)
    pruned = []
    for c, records in enumerate(stored):
        kept = [(sn, ddv) for sn, ddv in records if sn >= mins[c]]
        if not kept:
            kept = [records[-1]]
        pruned.append(kept)
    for failed in range(len(stored)):
        assert cascade_targets(stored, current, failed) == cascade_targets(
            pruned, current, failed
        )


# ----------------------------------------------------------------------
# domino fixpoint properties
# ----------------------------------------------------------------------
@st.composite
def domino_instance(draw):
    n = draw(st.integers(min_value=2, max_value=3))
    checkpoints = [
        list(range(1, draw(st.integers(min_value=1, max_value=4)) + 1))
        for _ in range(n)
    ]
    n_edges = draw(st.integers(min_value=0, max_value=8))
    edges = []
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        if src == dst:
            continue
        edges.append(
            (
                src,
                draw(st.integers(0, checkpoints[src][-1])),
                dst,
                draw(st.integers(0, checkpoints[dst][-1])),
            )
        )
    failed = draw(st.integers(0, n - 1))
    return checkpoints, edges, failed


@given(domino_instance())
@settings(max_examples=150, deadline=None)
def test_domino_fixpoint_is_consistent(inst):
    """At the fixpoint no message is half-erased."""
    checkpoints, edges, failed = inst
    targets = domino_targets(checkpoints, edges, failed)
    INF = float("inf")
    eff = [t if t is not None else INF for t in targets]
    for src, se, dst, re in edges:
        sent_kept = se < eff[src]
        recv_kept = re < eff[dst]
        assert sent_kept == recv_kept


@given(domino_instance())
@settings(max_examples=150, deadline=None)
def test_domino_faulty_always_rolls(inst):
    checkpoints, edges, failed = inst
    targets = domino_targets(checkpoints, edges, failed)
    assert targets[failed] is not None
    assert targets[failed] <= checkpoints[failed][-1]
