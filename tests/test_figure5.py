"""Integration test: the paper's §4 worked example (Figure 5).

Every observable step of the narrative is asserted: which messages force
CLCs, the acknowledgement SNs, the rollback targets and the alert cascade.
"""

import pytest

from repro.experiments.figure5 import figure5_scenario


@pytest.fixture(scope="module")
def outcome():
    return figure5_scenario()


class TestPreFault:
    def test_sequence_numbers(self, outcome):
        # c0: initial + m5-forced; c1: initial + m1-forced + 2 manual;
        # c2: initial + m3-forced + m4-forced
        assert outcome.pre_fault_sns == [2, 4, 3]

    def test_ddvs(self, outcome):
        assert outcome.pre_fault_ddvs[0] == (2, 0, 3)   # heard c2@3 via m5
        assert outcome.pre_fault_ddvs[1] == (1, 4, 0)   # heard c0@1 via m1
        assert outcome.pre_fault_ddvs[2] == (0, 4, 3)   # heard c1@4 via m4

    def test_forced_counts(self, outcome):
        """m1, m3, m4, m5 forced CLCs; m2 did not."""
        assert outcome.pre_fault_forced == [1, 1, 2]

    def test_acks_are_sn_plus_one(self, outcome):
        assert outcome.acks == {"m1": 2, "m2": 3, "m3": 2, "m4": 3, "m5": 2}


class TestCascade:
    def test_rollback_order_and_targets(self, outcome):
        """Faulty cluster to its last CLC; c2 to the m4 boundary; c0 to
        the m5 boundary."""
        assert outcome.rollbacks == [(1, 4), (2, 3), (0, 2)]

    def test_alert_cascade(self, outcome):
        assert outcome.alerts == [(1, 4), (2, 3), (0, 2)]

    def test_no_further_rollbacks(self, outcome):
        """"no cluster has to rollback anymore" -- exactly one rollback
        per cluster."""
        clusters = [c for c, _sn in outcome.rollbacks]
        assert sorted(clusters) == [0, 1, 2]

    def test_no_replays_needed(self, outcome):
        """All logged messages were acked at or below the alert SNs."""
        assert outcome.replays == 0

    def test_post_fault_sns_match_targets(self, outcome):
        assert outcome.post_fault_sns == [2, 4, 3]


class TestTransitiveVariant:
    """Under whole-DDV piggybacking the recovery line is identical, but it
    is reached in a *single alert hop*: m5 carried c2's whole DDV, so
    cluster 0 already knows it depends on cluster 1 and reacts to the
    faulty cluster's own alert instead of waiting for cluster 2's."""

    @pytest.fixture(scope="class")
    def ddv_outcome(self):
        return figure5_scenario(protocol_options={"mode": "ddv"})

    def test_same_recovery_line(self, ddv_outcome, outcome):
        assert sorted(ddv_outcome.rollbacks) == sorted(outcome.rollbacks)
        assert ddv_outcome.replays == outcome.replays

    def test_one_hop_convergence(self, ddv_outcome):
        # cluster 0 rolls back immediately after the faulty cluster's own
        # alert (position 2 in SN mode, position 1 here)
        assert ddv_outcome.rollbacks[0] == (1, 4)
        assert ddv_outcome.rollbacks[1] == (0, 2)

    def test_same_acks(self, ddv_outcome, outcome):
        assert ddv_outcome.acks == outcome.acks

    def test_transitive_entries_appear(self, ddv_outcome):
        # c2 learned c0's SN through c1 (m3); c0 learned c1's SN through
        # c2 (m5) -- neither ever received from those clusters directly
        assert ddv_outcome.pre_fault_ddvs[2][0] == 1
        assert ddv_outcome.pre_fault_ddvs[0][1] == 4
        assert ddv_outcome.pre_fault_sns == [2, 4, 3]


class TestPostRecovery:
    def test_protocol_invariants_hold(self, outcome):
        from repro.analysis.consistency import check_invariants

        assert check_invariants(outcome.federation) == []

    def test_consistency(self, outcome):
        from repro.analysis.consistency import verify_consistency

        report = verify_consistency(outcome.federation)
        assert report.ok, str(report)

    def test_ghost_sends_dropped_from_logs(self, outcome):
        """m4 (sent in c1's erased epoch) and m5 (c2's) left the logs."""
        states = outcome.federation.protocol.cluster_states
        assert states[1].sent_log.dropped_by_rollback == 1  # m4
        assert states[2].sent_log.dropped_by_rollback == 1  # m5

    def test_epochs_bumped_once_each(self, outcome):
        states = outcome.federation.protocol.cluster_states
        assert [cs.rollback_epoch for cs in states] == [1, 1, 1]
