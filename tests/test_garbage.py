"""Protocol tests: garbage collection (§3.5), centralized and distributed."""

import pytest

from repro.network.message import NodeId
from tests.conftest import make_federation


def busy_fed(gc_mode="centralized", gc_period=200.0, n_clusters=2, **kw):
    """Bidirectional chatter so CLCs and log entries accumulate."""
    return make_federation(
        n_clusters=n_clusters,
        nodes=2,
        clc_period=60.0,
        gc_period=gc_period,
        total_time=1000.0,
        chatty=True,
        protocol_options={"gc_mode": gc_mode},
        **kw,
    )


class TestCentralizedGc:
    def test_rounds_happen_periodically(self):
        fed = busy_fed()
        results = fed.run()
        gc = fed.protocol.garbage_collector
        assert gc.rounds_started >= 4
        assert gc.rounds_completed >= 4

    def test_old_clcs_removed(self):
        fed = busy_fed()
        results = fed.run()
        assert results.counter("gc/clcs_removed") > 0
        # after each GC at most a handful of CLCs remain
        for c in range(2):
            for _t, _before, after in results.gc_series(c):
                assert after <= 3

    def test_before_after_series_recorded(self):
        fed = busy_fed()
        results = fed.run()
        series = results.gc_series(0)
        assert len(series) >= 4
        for _t, before, after in series:
            assert after <= before

    def test_acked_log_entries_pruned(self):
        fed = busy_fed()
        results = fed.run()
        assert results.counter("gc/log_entries_removed") > 0

    def test_message_pattern(self):
        """N-1 requests + N-1 responses + N-1 collects per round, plus an
        intra-cluster broadcast (§5.4)."""
        fed = busy_fed(n_clusters=3)
        results = fed.run()
        gc = fed.protocol.garbage_collector
        started, completed = gc.rounds_started, gc.rounds_completed
        assert completed > 0
        # a round may still be in flight when the simulation ends
        assert results.counter("net/protocol/gc_request") == 2 * started
        assert 2 * completed <= results.counter("net/protocol/gc_response") <= 2 * started
        assert results.counter("net/protocol/gc_collect") == 2 * completed
        # each of the 3 clusters broadcasts to its 1 other node per round
        assert results.counter("net/protocol/gc_local") == 3 * completed

    def test_gc_never_breaks_recovery(self):
        """After every GC, a failure anywhere still finds a rollback
        target among the kept CLCs."""
        fed = busy_fed()
        fed.start()
        fed.sim.run(until=850.0)  # several GCs happened
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=1000.0)
        # the faulty cluster restored something
        assert fed.tracer.first("rollback", cluster=0) is not None
        # and every alert-triggered check found a target (no defensive
        # "no qualifying CLC" path taken): rollback count is bounded
        assert fed.results().counter("rollback/total") >= 1

    def test_on_demand_collection(self):
        fed = make_federation(
            nodes=2, clc_period=50.0, gc_period=None, total_time=400.0,
        )
        fed.start()
        fed.sim.run(until=300.0)
        stored_before = len(fed.protocol.cluster_states[0].store)
        fed.protocol.collect_garbage()
        fed.sim.run(until=400.0)
        stored_after = len(fed.protocol.cluster_states[0].store)
        assert stored_after <= stored_before
        assert fed.protocol.garbage_collector.rounds_completed == 1

    def test_no_gc_when_period_none(self):
        fed = make_federation(
            nodes=2, clc_period=50.0, gc_period=None, total_time=500.0,
        )
        results = fed.run()
        assert fed.protocol.garbage_collector.rounds_started == 0
        # CLCs accumulate unboundedly
        assert results.stored_clcs(0) >= 8


class TestDistributedGc:
    def test_rounds_complete(self):
        fed = busy_fed(gc_mode="distributed")
        fed.run()
        gc = fed.protocol.garbage_collector
        assert gc.rounds_completed >= 4

    def test_prunes_like_centralized(self):
        fed = busy_fed(gc_mode="distributed")
        results = fed.run()
        assert results.counter("gc/clcs_removed") > 0
        for _t, _before, after in results.gc_series(0):
            assert after <= 3

    def test_token_message_count(self):
        """Two laps of the ring: 2*N inter-cluster messages per round."""
        fed = busy_fed(gc_mode="distributed", n_clusters=3)
        results = fed.run()
        rounds = fed.protocol.garbage_collector.rounds_completed
        token_msgs = results.counter("net/protocol/gc_request") + results.counter(
            "net/protocol/gc_collect"
        )
        assert token_msgs == pytest.approx(2 * 3 * rounds, abs=3)

    def test_equivalent_bounds(self):
        """Both collectors compute the same prune bounds on the same state."""
        outcomes = {}
        for mode in ("centralized", "distributed"):
            fed = make_federation(
                nodes=2,
                clc_period=60.0,
                gc_period=None,
                total_time=600.0,
                chatty=True,
                protocol_options={"gc_mode": mode},
                seed=7,
            )
            fed.start()
            fed.sim.run(until=500.0)
            fed.protocol.collect_garbage()
            fed.sim.run(until=600.0)
            outcomes[mode] = [
                fed.protocol.cluster_states[c].store.sns() for c in range(2)
            ]
        assert outcomes["centralized"] == outcomes["distributed"]


class TestGcEpochGuard:
    def test_round_skipped_after_concurrent_rollback(self):
        """A GC round that raced a rollback must not prune."""
        fed = make_federation(
            nodes=2, clc_period=50.0, gc_period=None, total_time=600.0,
        )
        fed.start()
        fed.sim.run(until=300.0)
        gc = fed.protocol.garbage_collector
        # Start a GC round, then roll a cluster back before the collect
        # phase can apply (we fake it by bumping the epoch mid-round).
        gc.collect_now()
        cs = fed.protocol.cluster_states[1]
        cs.rollback_epoch += 1  # simulates a rollback racing the round
        fed.sim.run(until=400.0)
        assert fed.results().counter("gc/skipped") >= 1
