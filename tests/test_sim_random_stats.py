"""Unit tests for random streams, statistics collectors, timers, tracing."""

import math

import pytest

from repro.sim.random import RandomStreams, Stream
from repro.sim.stats import Counter, Series, StatsRegistry, Tally, TimeWeighted
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLevel, Tracer


class TestRandomStreams:
    def test_same_name_same_object(self):
        rs = RandomStreams(1)
        assert rs.stream("a") is rs.stream("a")

    def test_different_names_independent(self):
        rs = RandomStreams(1)
        a = [rs.stream("a").random() for _ in range(5)]
        b = [rs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        xs = [RandomStreams(7).stream("x").random() for _ in range(3)]
        ys = [RandomStreams(7).stream("x").random() for _ in range(3)]
        # fresh registries replay identical sequences
        assert xs[0] == ys[0]

    def test_creation_order_does_not_matter(self):
        rs1 = RandomStreams(3)
        rs1.stream("a")
        v1 = rs1.stream("b").random()
        rs2 = RandomStreams(3)
        v2 = rs2.stream("b").random()  # "a" never created here
        assert v1 == v2

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != RandomStreams(2).stream("x").random()

    def test_exponential_mean(self):
        st = RandomStreams(0).stream("exp")
        n = 20000
        mean = sum(st.exponential(10.0) for _ in range(n)) / n
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_exponential_positive(self):
        st = RandomStreams(0).stream("exp2")
        assert all(st.exponential(1.0) > 0 for _ in range(1000))

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).stream("e").exponential(0.0)

    def test_uniform_bounds(self):
        st = RandomStreams(0).stream("u")
        assert all(2.0 <= st.uniform(2.0, 5.0) <= 5.0 for _ in range(1000))

    def test_randint_bounds(self):
        st = RandomStreams(0).stream("i")
        values = {st.randint(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_choice_uniform(self):
        st = RandomStreams(0).stream("c")
        assert all(st.choice("xyz") in "xyz" for _ in range(100))

    def test_choice_weighted_respects_zero(self):
        st = RandomStreams(0).stream("w")
        picks = {st.choice(["a", "b"], weights=[1.0, 0.0]) for _ in range(100)}
        assert picks == {"a"}

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            RandomStreams(0).stream("c2").choice([])

    def test_choice_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            RandomStreams(0).stream("c3").choice([1, 2], weights=[1.0])

    def test_bernoulli_probability(self):
        st = RandomStreams(0).stream("b")
        hits = sum(st.bernoulli(0.3) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.3, abs=0.02)

    def test_bernoulli_invalid(self):
        with pytest.raises(ValueError):
            RandomStreams(0).stream("b2").bernoulli(1.5)

    def test_fork_is_deterministic(self):
        a = Stream("s", 1).fork("child").random()
        b = Stream("s", 1).fork("child").random()
        assert a == b


class TestCounter:
    def test_increment(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestTally:
    def test_mean_min_max(self):
        t = Tally("t")
        for v in (1.0, 2.0, 3.0):
            t.record(v)
        assert t.mean == pytest.approx(2.0)
        assert t.min == 1.0
        assert t.max == 3.0
        assert t.total == 6.0
        assert t.count == 3

    def test_variance_matches_numpy(self):
        import numpy as np

        data = [1.5, 2.5, 9.0, -3.0, 0.25, 7.75]
        t = Tally("t")
        for v in data:
            t.record(v)
        assert t.variance == pytest.approx(np.var(data, ddof=1))
        assert t.stdev == pytest.approx(np.std(data, ddof=1))

    def test_empty_tally(self):
        t = Tally("t")
        assert t.mean == 0.0
        assert t.variance == 0.0

    def test_single_value_variance_zero(self):
        t = Tally("t")
        t.record(5.0)
        assert t.variance == 0.0


class TestTimeWeighted:
    def test_time_average(self):
        now = [0.0]
        g = TimeWeighted("g", lambda: now[0], initial=0.0)
        now[0] = 10.0
        g.set(4.0)       # 0 for 10s
        now[0] = 20.0
        g.set(0.0)       # 4 for 10s
        now[0] = 40.0    # 0 for 20s
        assert g.time_average() == pytest.approx(1.0)

    def test_max_tracked(self):
        now = [0.0]
        g = TimeWeighted("g", lambda: now[0])
        g.set(7.0)
        g.set(2.0)
        assert g.max == 7.0

    def test_adjust(self):
        now = [0.0]
        g = TimeWeighted("g", lambda: now[0], initial=3.0)
        g.adjust(+2)
        g.adjust(-1)
        assert g.value == 4.0


class TestSeries:
    def test_records_pairs(self):
        s = Series("s")
        s.record(1.0, 10)
        s.record(2.0, 20)
        assert list(s) == [(1.0, 10), (2.0, 20)]
        assert len(s) == 2

    def test_non_monotonic_rejected(self):
        s = Series("s")
        s.record(5.0, 1)
        with pytest.raises(ValueError):
            s.record(4.0, 2)


class TestStatsRegistry:
    def test_create_on_first_use(self):
        reg = StatsRegistry(lambda: 0.0)
        reg.counter("a").inc()
        assert reg.counter("a").value == 1
        assert "a" in reg

    def test_type_conflict_rejected(self):
        reg = StatsRegistry(lambda: 0.0)
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.tally("a")

    def test_snapshot_shapes(self):
        now = [0.0]
        reg = StatsRegistry(lambda: now[0])
        reg.counter("c").inc(3)
        reg.tally("t").record(2.0)
        reg.gauge("g").set(5.0)
        reg.series("s").record(1.0, 9)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["t"]["count"] == 1
        assert snap["g"]["value"] == 5.0
        assert snap["s"] == [(1.0, 9)]

    def test_names_sorted(self):
        reg = StatsRegistry(lambda: 0.0)
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]


class TestPeriodicTimer:
    def test_fires_periodically(self, sim):
        hits = []
        timer = PeriodicTimer(sim, 10.0, lambda: hits.append(sim.now))
        timer.start()
        sim.run(until=35.0)
        assert hits == [10.0, 20.0, 30.0]

    def test_infinite_period_never_fires(self, sim):
        hits = []
        timer = PeriodicTimer(sim, None, lambda: hits.append(sim.now))
        timer.start()
        sim.run(until=100.0)
        assert hits == []
        assert not timer.enabled

    def test_inf_float_treated_as_disabled(self, sim):
        timer = PeriodicTimer(sim, math.inf, lambda: None)
        timer.start()
        assert not timer.armed

    def test_reset_restarts_full_period(self, sim):
        hits = []
        timer = PeriodicTimer(sim, 10.0, lambda: hits.append(sim.now))
        timer.start()
        sim.schedule(5.0, timer.reset)  # the paper's forced-CLC reset
        sim.run(until=20.0)
        assert hits == [15.0]

    def test_stop_disarms(self, sim):
        hits = []
        timer = PeriodicTimer(sim, 10.0, lambda: hits.append(sim.now))
        timer.start()
        sim.schedule(25.0, timer.stop)
        sim.run(until=60.0)
        assert hits == [10.0, 20.0]

    def test_action_reset_prevents_double_schedule(self, sim):
        hits = []
        timer = PeriodicTimer(sim, 10.0, None)

        def action():
            hits.append(sim.now)
            timer.reset()

        timer.action = action
        timer.start()
        sim.run(until=35.0)
        assert hits == [10.0, 20.0, 30.0]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_set_period_rearms(self, sim):
        hits = []
        timer = PeriodicTimer(sim, 10.0, lambda: hits.append(sim.now))
        timer.start()
        sim.schedule(5.0, timer.set_period, 2.0)
        sim.run(until=10.0)
        assert hits == [7.0, 9.0]

    def test_firings_counter(self, sim):
        timer = PeriodicTimer(sim, 5.0, lambda: None)
        timer.start()
        sim.run(until=20.0)
        assert timer.firings == 4


class TestTracer:
    def test_level_filtering(self):
        tr = Tracer(lambda: 1.0, TraceLevel.PROTOCOL)
        tr.protocol("a")
        tr.message("b")
        tr.debug("c")
        assert [r.kind for r in tr.records] == ["a"]

    def test_none_level_records_nothing(self):
        tr = Tracer(lambda: 0.0, TraceLevel.NONE)
        tr.protocol("a")
        assert len(tr) == 0

    def test_find_with_field_match(self):
        tr = Tracer(lambda: 0.0, TraceLevel.DEBUG)
        tr.protocol("evt", cluster=1)
        tr.protocol("evt", cluster=2)
        assert tr.count("evt") == 2
        assert tr.count("evt", cluster=2) == 1
        assert tr.first("evt", cluster=2)["cluster"] == 2

    def test_first_missing_returns_none(self):
        tr = Tracer(lambda: 0.0, TraceLevel.DEBUG)
        assert tr.first("nope") is None

    def test_timestamps_from_clock(self):
        now = [0.0]
        tr = Tracer(lambda: now[0], TraceLevel.DEBUG)
        now[0] = 3.5
        tr.debug("x")
        assert tr.records[0].time == 3.5

    def test_clear(self):
        tr = Tracer(lambda: 0.0, TraceLevel.DEBUG)
        tr.debug("x")
        tr.clear()
        assert len(tr) == 0

    def test_record_get_default(self):
        tr = Tracer(lambda: 0.0, TraceLevel.DEBUG)
        tr.debug("x", a=1)
        rec = tr.records[0]
        assert rec.get("a") == 1
        assert rec.get("b", "dflt") == "dflt"
