"""Unit tests for messages, topology and the fabric."""

import pytest

from repro.network.message import Message, MessageKind, NodeId
from repro.network.topology import (
    ETHERNET_LIKE,
    MYRINET_LIKE,
    ClusterSpec,
    LinkSpec,
    Topology,
    two_cluster_topology,
)
from repro.network.fabric import Fabric
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry


def make_fabric(topology=None, fifo=True):
    sim = Simulator()
    topo = topology or two_cluster_topology(nodes=3)
    stats = StatsRegistry(lambda: sim.now)
    fabric = Fabric(sim, topo, stats, tracer=None, fifo=fifo)
    return sim, topo, stats, fabric


class TestNodeId:
    def test_ordering_and_equality(self):
        assert NodeId(0, 1) == NodeId(0, 1)
        assert NodeId(0, 1) < NodeId(1, 0)
        assert str(NodeId(2, 5)) == "c2n5"

    def test_hashable(self):
        assert len({NodeId(0, 1), NodeId(0, 1), NodeId(1, 1)}) == 2


class TestMessage:
    def test_unique_increasing_ids(self):
        a = Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 10)
        b = Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 10)
        assert b.msg_id > a.msg_id

    def test_inter_cluster_flag(self):
        intra = Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 1)
        inter = Message(NodeId(0, 0), NodeId(1, 0), MessageKind.APP, 1)
        assert not intra.inter_cluster
        assert inter.inter_cluster

    def test_replay_clone_keeps_identity(self):
        msg = Message(NodeId(0, 0), NodeId(1, 0), MessageKind.APP, 9,
                      payload={"k": 1}, piggyback="pb")
        clone = msg.clone_for_replay()
        assert clone.msg_id == msg.msg_id
        assert clone.kind is MessageKind.REPLAY
        assert clone.piggyback == "pb"
        assert clone.payload == {"k": 1}
        assert clone.payload is not msg.payload

    def test_is_app_kinds(self):
        assert MessageKind.APP.is_app
        assert MessageKind.REPLAY.is_app
        assert not MessageKind.CLC_REQUEST.is_app
        assert not MessageKind.ALERT.is_app


class TestLinkSpec:
    def test_transfer_delay(self):
        link = LinkSpec(latency=1e-3, bandwidth=8e6)  # 8 Mb/s = 1 MB/s
        assert link.transfer_delay(1000) == pytest.approx(1e-3 + 1e-3)

    def test_paper_link_constants(self):
        assert MYRINET_LIKE.latency == pytest.approx(10e-6)
        assert MYRINET_LIKE.bandwidth == pytest.approx(80e6)
        assert ETHERNET_LIKE.latency == pytest.approx(150e-6)
        assert ETHERNET_LIKE.bandwidth == pytest.approx(100e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            LinkSpec(latency=0.0, bandwidth=0.0)


class TestTopology:
    def test_counts(self):
        topo = two_cluster_topology(nodes=100)
        assert topo.n_clusters == 2
        assert topo.total_nodes == 200
        assert topo.nodes_in(1) == 100

    def test_all_nodes(self):
        topo = two_cluster_topology(nodes=2)
        assert list(topo.all_nodes()) == [
            NodeId(0, 0), NodeId(0, 1), NodeId(1, 0), NodeId(1, 1)
        ]

    def test_intra_link_is_cluster_san(self):
        topo = two_cluster_topology()
        assert topo.link_between(0, 0) is topo.clusters[0].link

    def test_inter_link_symmetric(self):
        link = LinkSpec(latency=1.0, bandwidth=1.0)
        topo = Topology(
            clusters=[ClusterSpec("a", 1), ClusterSpec("b", 1)],
            inter_links={(1, 0): link},  # reversed key normalizes
        )
        assert topo.link_between(0, 1) is link
        assert topo.link_between(1, 0) is link

    def test_default_inter_link_fills_missing(self):
        topo = Topology(
            clusters=[ClusterSpec("a", 1), ClusterSpec("b", 1), ClusterSpec("c", 1)],
            inter_links={},
        )
        assert topo.link_between(0, 2) is topo.default_inter_link

    def test_self_link_in_inter_links_rejected(self):
        with pytest.raises(ValueError):
            Topology(
                clusters=[ClusterSpec("a", 1)],
                inter_links={(0, 0): MYRINET_LIKE},
            )

    def test_unknown_cluster_in_links_rejected(self):
        with pytest.raises(ValueError):
            Topology(
                clusters=[ClusterSpec("a", 1)],
                inter_links={(0, 3): MYRINET_LIKE},
            )

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            Topology(clusters=[])

    def test_invalid_mtbf_rejected(self):
        with pytest.raises(ValueError):
            Topology(clusters=[ClusterSpec("a", 1)], mtbf=0.0)

    def test_failures_enabled(self):
        assert not Topology(clusters=[ClusterSpec("a", 1)]).failures_enabled
        assert Topology(clusters=[ClusterSpec("a", 1)], mtbf=10.0).failures_enabled

    def test_delay_uses_right_link(self):
        topo = two_cluster_topology()
        intra = topo.delay(NodeId(0, 0), NodeId(0, 1), 1000)
        inter = topo.delay(NodeId(0, 0), NodeId(1, 0), 1000)
        assert intra == pytest.approx(10e-6 + 8000 / 80e6)
        assert inter == pytest.approx(150e-6 + 8000 / 100e6)

    def test_validate_node(self):
        topo = two_cluster_topology(nodes=2)
        topo.validate_node(NodeId(1, 1))
        with pytest.raises(ValueError):
            topo.validate_node(NodeId(2, 0))
        with pytest.raises(ValueError):
            topo.validate_node(NodeId(0, 5))

    def test_cluster_needs_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec("x", 0)


class TestFabric:
    def test_delivers_to_registered_receiver(self):
        sim, topo, stats, fabric = make_fabric()
        got = []
        fabric.register(NodeId(0, 0), got.append)
        fabric.register(NodeId(0, 1), got.append)
        msg = Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 100)
        fabric.send(msg)
        sim.run()
        assert got == [msg]

    def test_delivery_time_matches_link_model(self):
        sim, topo, stats, fabric = make_fabric()
        seen = []
        fabric.register(NodeId(0, 0), lambda m: None)
        fabric.register(NodeId(1, 0), lambda m: seen.append(sim.now))
        fabric.send(Message(NodeId(0, 0), NodeId(1, 0), MessageKind.APP, 1000))
        sim.run()
        assert seen == [pytest.approx(150e-6 + 8000 / 100e6)]

    def test_unregistered_destination_rejected(self):
        sim, topo, stats, fabric = make_fabric()
        fabric.register(NodeId(0, 0), lambda m: None)
        with pytest.raises(ValueError):
            fabric.send(Message(NodeId(0, 0), NodeId(1, 2), MessageKind.APP, 1))

    def test_double_registration_rejected(self):
        sim, topo, stats, fabric = make_fabric()
        fabric.register(NodeId(0, 0), lambda m: None)
        with pytest.raises(ValueError):
            fabric.register(NodeId(0, 0), lambda m: None)

    def test_fifo_per_channel(self):
        sim, topo, stats, fabric = make_fabric()
        order = []
        fabric.register(NodeId(0, 0), lambda m: None)
        fabric.register(NodeId(0, 1), lambda m: order.append(m.payload["n"]))
        # big slow message first, small fast one second: FIFO keeps order
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP,
                            10_000_000, payload={"n": 1}))
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP,
                            1, payload={"n": 2}))
        sim.run()
        assert order == [1, 2]

    def test_non_fifo_allows_overtaking(self):
        sim, topo, stats, fabric = make_fabric(fifo=False)
        order = []
        fabric.register(NodeId(0, 0), lambda m: None)
        fabric.register(NodeId(0, 1), lambda m: order.append(m.payload["n"]))
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP,
                            10_000_000, payload={"n": 1}))
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP,
                            1, payload={"n": 2}))
        sim.run()
        assert order == [2, 1]

    def test_app_message_matrix(self):
        sim, topo, stats, fabric = make_fabric()
        for node in topo.all_nodes():
            fabric.register(node, lambda m: None)
        fabric.send(Message(NodeId(0, 0), NodeId(1, 0), MessageKind.APP, 1))
        fabric.send(Message(NodeId(0, 1), NodeId(1, 2), MessageKind.APP, 1))
        fabric.send(Message(NodeId(1, 0), NodeId(1, 1), MessageKind.APP, 1))
        sim.run()
        assert fabric.app_message_count(0, 1) == 2
        assert fabric.app_message_count(1, 1) == 1
        assert fabric.app_message_count(1, 0) == 0
        matrix = fabric.app_message_matrix()
        assert matrix[(0, 1)] == 2

    def test_protocol_messages_counted_separately(self):
        sim, topo, stats, fabric = make_fabric()
        for node in topo.all_nodes():
            fabric.register(node, lambda m: None)
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.CLC_REQUEST, 64))
        fabric.send(Message(NodeId(0, 0), NodeId(1, 0), MessageKind.ALERT, 64))
        sim.run()
        assert fabric.protocol_message_count() == 2
        assert fabric.protocol_message_count(MessageKind.ALERT) == 1
        assert fabric.app_message_count(0, 1) == 0
        assert stats.counter("net/protocol_inter").value == 1

    def test_replay_not_in_app_matrix(self):
        sim, topo, stats, fabric = make_fabric()
        for node in topo.all_nodes():
            fabric.register(node, lambda m: None)
        original = Message(NodeId(0, 0), NodeId(1, 0), MessageKind.APP, 10)
        fabric.send(original)
        fabric.send(original.clone_for_replay())
        sim.run()
        assert fabric.app_message_count(0, 1) == 1
        assert stats.counter("net/replays").value == 1

    def test_send_time_stamped(self):
        sim, topo, stats, fabric = make_fabric()
        fabric.register(NodeId(0, 0), lambda m: None)
        fabric.register(NodeId(0, 1), lambda m: None)
        msg = Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 1)
        sim.schedule(5.0, fabric.send, msg)
        sim.run()
        assert msg.send_time == 5.0

    def test_byte_accounting(self):
        sim, topo, stats, fabric = make_fabric()
        for node in topo.all_nodes():
            fabric.register(node, lambda m: None)
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 500))
        fabric.send(Message(NodeId(0, 0), NodeId(0, 1), MessageKind.REPLICA, 300))
        sim.run()
        assert stats.counter("net/bytes/app").value == 500
        assert stats.counter("net/bytes/protocol").value == 300
