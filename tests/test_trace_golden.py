"""Golden trace-equivalence suite: the substrate rewrite safety net.

``tests/golden/trace_digests.json`` holds, for every registered experiment
at tiny scale, an order-sensitive digest of the *entire kernel dispatch
stream* -- every event's ``(time, seq, callback)``, across every grid
point, hashed in dispatch order (see :mod:`repro.sim.trace_digest`).  The
digests were recorded with the pre-rewrite kernel (commit 89bd73f, before
the tuple-entry heap / fabric / protocol-core fast paths), so a match
proves the optimized substrate reproduces the original behavior
bit-for-bit: not "statistically close", but the same events, at the same
simulated instants, in the same order, into the same handlers.

Refreshing the goldens
----------------------

Only refresh when a *behavior* change is intentional (protocol changes,
new experiments, deliberate event-order changes) -- never to make an
optimization pass:

.. code-block:: console

    PYTHONPATH=src python tools/record_golden_traces.py        # rewrite
    PYTHONPATH=src python tools/record_golden_traces.py --check  # diff only

(the same refresh is available as
``HC3I_UPDATE_GOLDEN=1 python -m pytest tests/test_trace_golden.py``).
The file is committed, so the diff will show exactly which experiments'
streams changed; call that out in the PR description.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.experiments.golden import (
    all_experiment_digests,
    experiment_digest,
    golden_overrides,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "trace_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
UPDATE = bool(os.environ.get("HC3I_UPDATE_GOLDEN"))


def test_every_registered_experiment_has_a_golden():
    """A new experiment must get a digest recorded alongside it."""
    missing = sorted(set(registry.names()) - set(GOLDEN))
    stale = sorted(set(GOLDEN) - set(registry.names()))
    assert not missing, (
        f"experiments without golden digests: {missing}; run "
        "tools/record_golden_traces.py and commit the result"
    )
    assert not stale, f"golden digests for unregistered experiments: {stale}"


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_dispatch_stream_matches_golden(name):
    if UPDATE:
        pytest.skip("HC3I_UPDATE_GOLDEN set: refreshing instead of asserting")
    got = experiment_digest(name)
    want = GOLDEN[name]
    assert got["events"] == want["events"], (
        f"{name}: dispatched {got['events']} events, golden has "
        f"{want['events']} -- the substrate changed how much work runs"
    )
    assert got == want, (
        f"{name}: dispatch-stream digest diverged from the pre-rewrite "
        "golden. If this is an intentional behavior change, refresh with "
        "tools/record_golden_traces.py; if you were optimizing, this is a bug."
    )


@pytest.mark.skipif(not UPDATE, reason="set HC3I_UPDATE_GOLDEN=1 to refresh")
def test_update_golden():
    digests = all_experiment_digests()
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")


class TestDigestSensitivity:
    """The digest must actually react to behavior changes -- otherwise a
    golden 'match' proves nothing."""

    def test_different_seed_changes_digest(self):
        exp = registry.get("table1")
        base = golden_overrides(exp)
        a = experiment_digest("table1", {**base, "seed": 7})
        b = experiment_digest("table1", {**base, "seed": 8})
        assert a["digest"] != b["digest"]

    def test_different_scale_changes_digest(self):
        exp = registry.get("table1")
        base = golden_overrides(exp)
        a = experiment_digest("table1", base)
        b = experiment_digest("table1", {**base, "nodes": 5})
        assert a["digest"] != b["digest"]

    def test_same_run_is_reproducible(self):
        a = experiment_digest("fig6-fig7")
        b = experiment_digest("fig6-fig7")
        assert a == b
