"""Trace-replay consistency oracle for any checkpointing protocol.

The paper's §2.2 definition of a consistent state -- "neither in-transit
messages (sent but not received) nor ghost-messages (received but not
sent)" -- is checked here from the *outside*: the oracle records every
inter-cluster application send, every application delivery and every
rollback the protocol performs, then replays the recovery lines against
the message trace.  Nothing protocol-specific is consulted for the
verdict, so the same oracle locks down HC3I, every baseline and any
future family on the :mod:`repro.core.protocol` contract.

Timeline model
--------------

A rollback of cluster ``c`` to ``target_time`` at simulation time ``now``
*erases* every event that happened on ``c`` in the closed interval
``[target_time, now]``: sends from an erased interval never happened in
the surviving timeline, deliveries in it are forgotten with the discarded
state.  (Protocols report exactly these two numbers through
``Federation.on_cluster_rollback``, which the oracle wraps.)

The interval is closed on the *left* because a checkpoint's content is
fixed the moment its commit is recorded: events stamped at exactly the
commit instant -- deliveries of messages queued for a forced CLC, sends
flushed out of a freeze window -- are causally *after* the commit and are
not part of the restored state.  This matches HC3I's own ghost test,
which treats a send stamped with ``sn >= restored_sn`` as erased.

Checked invariants, on the surviving timeline only:

* **no orphan (ghost)** -- a delivery survives but every send of that
  message was erased: the receiver remembers a message nobody sent;
* **no duplicate** -- one message id delivered more than once (replays
  must be deduplicated against deliveries the restored state still
  contains);
* **no lost message (in-transit)** -- a send survives but no delivery
  does, and the message is not still in flight, not queued/deferred/held
  anywhere at the receiver, and not re-producible from a sender-side
  message log.  Logged messages count as re-producible -- HC3I's own
  relaxation of the in-transit rule (§4: sender-side logging).

Usage::

    fed = make_federation(...)
    oracle = attach_oracle(fed)   # BEFORE fed.start()
    ... run, inject failures ...
    assert_consistent(fed, oracle)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation

__all__ = [
    "ConsistencyOracle",
    "DeliveryEvent",
    "OracleReport",
    "SendEvent",
    "assert_consistent",
    "attach_oracle",
]


@dataclass(frozen=True)
class SendEvent:
    """One inter-cluster application send observed at the fabric."""

    msg_id: int
    time: float
    src_cluster: int
    dst_cluster: int
    arrival: float
    kind: str


@dataclass(frozen=True)
class DeliveryEvent:
    """One inter-cluster application delivery observed at a node."""

    msg_id: int
    time: float
    cluster: int
    node: str
    kind: str


@dataclass
class OracleReport:
    """Verdict of a consistency check."""

    violations: list = field(default_factory=list)
    messages: int = 0
    delivered: int = 0
    in_flight: int = 0
    queued: int = 0
    replayable: int = 0
    erasures: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append((kind, detail))

    def __str__(self) -> str:
        if self.ok:
            return (
                f"consistent: {self.messages} messages "
                f"({self.delivered} delivered, {self.in_flight} in flight, "
                f"{self.queued} queued, {self.replayable} replayable) "
                f"across {self.erasures} rollback erasures"
            )
        lines = [f"INCONSISTENT ({len(self.violations)} violations):"]
        lines += [f"  [{kind}] {detail}" for kind, detail in self.violations]
        return "\n".join(lines)


class ConsistencyOracle:
    """Records sends/deliveries/rollbacks of a federation and checks them.

    Install with :func:`attach_oracle` *before* ``fed.start()`` so the
    initial protocol activity is captured too.  The oracle wraps
    ``fed.fabric.send``, every node's ``deliver_app`` and
    ``fed.on_cluster_rollback`` with recording shims; the wrapped
    behaviour is unchanged, so an instrumented run is trace-identical to
    a bare one.
    """

    def __init__(self, federation: "Federation"):
        self.federation = federation
        #: msg_id -> [SendEvent] (replays re-send under the same id)
        self.sends: dict = {}
        #: msg_id -> [DeliveryEvent]
        self.deliveries: dict = {}
        #: cluster -> [(erased_after, erased_until)]
        self.erasure_windows: dict = {}
        self._install()

    # -- recording shims -------------------------------------------------
    def _install(self) -> None:
        fed = self.federation
        fabric = fed.fabric
        fabric_send = fabric.send

        def send_shim(msg: Message) -> float:
            arrival = fabric_send(msg)
            if msg.kind.is_app and msg.inter_cluster:
                self.sends.setdefault(msg.msg_id, []).append(
                    SendEvent(
                        msg_id=msg.msg_id,
                        time=fed.sim.now,
                        src_cluster=msg.src.cluster,
                        dst_cluster=msg.dst.cluster,
                        arrival=arrival,
                        kind=msg.kind.value,
                    )
                )
            return arrival

        fabric.send = send_shim

        for cluster in fed.clusters:
            for node in cluster.nodes:
                self._wrap_node(node)

        rollback = fed.on_cluster_rollback

        def rollback_shim(cluster, target_time, failed_node=None):
            self.erasure_windows.setdefault(cluster, []).append(
                (target_time, fed.sim.now)
            )
            return rollback(cluster, target_time, failed_node)

        fed.on_cluster_rollback = rollback_shim

    def _wrap_node(self, node) -> None:
        deliver = node.deliver_app

        def deliver_shim(msg: Message) -> None:
            if msg.kind.is_app and msg.inter_cluster:
                self.deliveries.setdefault(msg.msg_id, []).append(
                    DeliveryEvent(
                        msg_id=msg.msg_id,
                        time=self.federation.sim.now,
                        cluster=node.id.cluster,
                        node=str(node.id),
                        kind=msg.kind.value,
                    )
                )
            return deliver(msg)

        node.deliver_app = deliver_shim

    # -- timeline --------------------------------------------------------
    def erased(self, cluster: int, t: float) -> bool:
        """Did a later rollback of ``cluster`` erase an event at ``t``?"""
        return any(
            target <= t <= until
            for target, until in self.erasure_windows.get(cluster, ())
        )

    def surviving_sends(self, msg_id: int) -> list:
        return [
            s
            for s in self.sends.get(msg_id, ())
            if not self.erased(s.src_cluster, s.time)
        ]

    def surviving_deliveries(self, msg_id: int) -> list:
        return [
            d
            for d in self.deliveries.get(msg_id, ())
            if not self.erased(d.cluster, d.time)
        ]

    # -- the check -------------------------------------------------------
    def check(self, allow_in_flight: bool = True) -> OracleReport:
        """Replay the recovery lines against the recorded trace.

        :param allow_in_flight: excuse surviving sends whose (latest)
            scheduled arrival lies beyond the current simulation time --
            the run ended with the message on the wire.  Pass ``False``
            only after the network has fully drained.
        """
        fed = self.federation
        now = fed.sim.now
        report = OracleReport(
            erasures=sum(len(w) for w in self.erasure_windows.values())
        )
        queued_ids = _queued_ids(fed)
        logged_ids = _logged_ids(fed)

        for msg_id, send_events in sorted(self.sends.items()):
            report.messages += 1
            live_sends = self.surviving_sends(msg_id)
            live_deliveries = self.surviving_deliveries(msg_id)

            if live_deliveries and not live_sends:
                d = live_deliveries[0]
                report.add(
                    "orphan",
                    f"msg {msg_id} delivered at t={d.time:.3f} on {d.node} "
                    f"but every send was erased by a rollback",
                )
            if len(live_deliveries) > 1:
                where = ", ".join(
                    f"{d.node}@t={d.time:.3f}" for d in live_deliveries
                )
                report.add(
                    "duplicate",
                    f"msg {msg_id} delivered {len(live_deliveries)} times "
                    f"in the surviving timeline ({where})",
                )
            if live_sends and not live_deliveries:
                if any(s.arrival > now for s in live_sends):
                    if allow_in_flight:
                        report.in_flight += 1
                        continue
                if msg_id in queued_ids:
                    report.queued += 1
                elif msg_id in logged_ids:
                    report.replayable += 1
                else:
                    s = live_sends[-1]
                    report.add(
                        "lost",
                        f"msg {msg_id} (c{s.src_cluster} -> c{s.dst_cluster}, "
                        f"sent t={s.time:.3f}) has no surviving delivery and "
                        f"is neither in flight, queued, nor logged",
                    )
            if live_deliveries:
                report.delivered += 1

        for msg_id in sorted(set(self.deliveries) - set(self.sends)):
            report.add(
                "unsourced",
                f"msg {msg_id} was delivered but never seen at the fabric",
            )
        return report


def attach_oracle(federation: "Federation") -> ConsistencyOracle:
    """Instrument ``federation`` (call before ``federation.start()``)."""
    return ConsistencyOracle(federation)


def assert_consistent(
    federation: "Federation",
    oracle: ConsistencyOracle,
    allow_in_flight: bool = True,
) -> OracleReport:
    """Check and raise ``AssertionError`` with the full report on failure."""
    report = oracle.check(allow_in_flight=allow_in_flight)
    if not report.ok:
        raise AssertionError(
            f"{federation.protocol.name}: {report}"
        )
    return report


# ----------------------------------------------------------------------
# where an undelivered message may legitimately wait
# ----------------------------------------------------------------------

#: agent attributes that hold not-yet-delivered input
_AGENT_QUEUES = ("deferred_in", "pending", "pending_force")


def _iter_messages(container: Iterable) -> Iterator[Message]:
    """Messages inside a queue of Messages / tuples / entry objects."""
    if isinstance(container, (bool, int, float, str)) or container is None:
        return
    try:
        items = list(container)
    except TypeError:
        return
    for item in items:
        if isinstance(item, Message):
            yield item
        elif isinstance(item, (tuple, list)):
            for sub in item:
                if isinstance(sub, Message):
                    yield sub
        elif isinstance(getattr(item, "msg", None), Message):
            yield item.msg


def _queued_ids(fed: "Federation") -> set:
    """Ids waiting in node hold buffers or agent input queues."""
    ids: set = set()
    for cluster in fed.clusters:
        for node in cluster.nodes:
            for msg in _iter_messages(node._held):
                ids.add(msg.msg_id)
            for attr in _AGENT_QUEUES:
                for msg in _iter_messages(getattr(node.agent, attr, ())):
                    ids.add(msg.msg_id)
    return ids


def _logged_ids(fed: "Federation") -> set:
    """Ids still re-producible from a sender-side message log."""
    ids: set = set()
    for states_attr in ("cluster_states", "states"):
        states = getattr(fed.protocol, states_attr, None)
        if not states:
            continue
        for cs in states:
            log = getattr(cs, "sent_log", None)
            if log is None:
                continue
            for msg in _iter_messages(log):
                ids.add(msg.msg_id)
    return ids
