"""Reusable test oracles: protocol-agnostic correctness checkers."""
