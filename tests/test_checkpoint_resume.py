"""Checkpoint/resume: snapshot fidelity, kill-and-resume equivalence, faults.

The contract under test (see docs/architecture.md): freezing a federation
between kernel slices and thawing it -- in the same process or on another
worker -- must reproduce the uninterrupted run's dispatch stream
bit-for-bit.  Chained trace digests make that checkable end to end: the
killed-and-resumed attempt's done-manifest digest must equal the
uninterrupted (checkpoint-activated) reference's.

Damaged snapshots are the other half of the contract: truncated, corrupt,
or stale (different code hash) envelopes must demote resume to a
from-zero rerun -- never crash the sweep, never change its results.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle

import pytest

import repro.network.message as message
from repro.app.workloads import table1_workload
from repro.cluster.federation import Federation
from repro.experiments import checkpoint, registry
from repro.experiments.checkpoint import (
    ENV_KILL,
    CheckpointConfig,
    SimulatedEviction,
)
from repro.experiments.golden import golden_overrides
from repro.experiments.remote_worker import make_wire_job
from repro.sim import snapshot
from repro.sim.process import Process
from repro.sim.snapshot import (
    CorruptSnapshotError,
    SnapshotError,
)
from repro.sim.trace_digest import ChainedTraceDigest

TINY = {"nodes": 4, "total_time": 1800.0}


def reset_msg_ids() -> None:
    """Pretend this is a fresh worker process (fresh message-id counter)."""
    message._msg_ids = itertools.count(1)


def make_fed(seed: int = 7) -> Federation:
    topology, application, timers = table1_workload(**TINY)
    return Federation(topology, application, timers, protocol="hc3i", seed=seed)


def tiny_point(name: str) -> dict:
    exp = registry.get(name)
    return exp.build_grid(golden_overrides(exp))[0]


def run_checkpointed(
    name: str,
    params: dict,
    directory,
    every: float = 120.0,
    wall=None,
    kill_at=None,
):
    """One ``run_point`` attempt under an explicit wire checkpoint policy."""
    exp = registry.get(name)
    wire = {
        "every": every,
        "wall": wall,
        "dir": str(directory),
        "key": checkpoint.point_key(name, params),
    }
    reset_msg_ids()
    if kill_at is not None:
        os.environ[ENV_KILL] = str(kill_at)
    try:
        return checkpoint.run_point(exp.point, params, experiment=name, wire=wire)
    finally:
        os.environ.pop(ENV_KILL, None)


def read_manifest(directory, name: str, params: dict) -> dict:
    key = checkpoint.point_key(name, params)
    return json.loads((directory / f"{key}.done.json").read_text())


def call_digests(manifest: dict) -> list:
    return [(c["digest"], c["events"]) for c in manifest["calls"]]


# ---------------------------------------------------------------------------
# snapshot layer


class TestSnapshotRoundtrip:
    def test_midrun_snapshot_resumes_bit_identically(self):
        reset_msg_ids()
        fed = make_fed()
        fed.sim.attach_digest(ChainedTraceDigest())
        fed.start()
        fed.sim.run(until=900.0)
        blob = snapshot.dumps(fed)
        fed.sim.run(until=1800.0)
        full = fed.sim._digest.summary()

        reset_msg_ids()
        restored = snapshot.loads(blob)
        restored.sim.run(until=1800.0)
        assert restored.sim._digest.summary() == full

    def test_snapshot_is_stable_across_repeats(self):
        def blob() -> bytes:
            reset_msg_ids()
            fed = make_fed()
            fed.start()
            fed.sim.run(until=900.0)
            return snapshot.dumps(fed)

        assert blob() == blob()

    def test_dumps_refuses_mid_run(self):
        fed = make_fed()
        fed.start()
        grabbed = []
        fed.sim.schedule(100.0, lambda: grabbed.append(snapshot.dumps(fed)))
        with pytest.raises(SnapshotError):
            fed.sim.run(until=200.0)
        assert not grabbed

    def test_raw_generator_process_is_rejected(self):
        fed = make_fed()
        fed.start()

        from repro.sim.process import Timeout

        def loiter():
            yield Timeout(1e17)

        Process(fed.sim, loiter(), name="no-spec")
        fed.sim.run(until=100.0)
        with pytest.raises(SnapshotError, match="GenSpec"):
            snapshot.dumps(fed)

    def test_process_unpickle_outside_snapshot_loads_is_refused(self):
        """A Process must only thaw through snapshot.loads (generator rebuild)."""
        reset_msg_ids()
        fed = make_fed()
        fed.start()
        fed.sim.run(until=900.0)
        blob = snapshot.dumps(fed)
        with pytest.raises(Exception, match="snapshot"):
            pickle.loads(blob)  # raw pickle skips the generator-rebuild batch
        reset_msg_ids()
        assert snapshot.loads(blob) is not None  # the supported path works

    def test_envelope_roundtrip_and_corruption(self, tmp_path):
        path = tmp_path / "x.ckpt"
        meta = {"state": "inflight", "call": 0}
        snapshot.write_envelope(path, meta, b"payload-bytes")
        header, payload = snapshot.read_envelope(path)
        assert payload == b"payload-bytes"
        assert header["state"] == "inflight"

        # truncation: lose the payload tail
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(CorruptSnapshotError):
            snapshot.read_envelope(path)

        # bit-flip inside the payload: sha mismatch
        broken = data[:-4] + bytes(reversed(data[-4:]))
        path.write_bytes(broken)
        with pytest.raises(CorruptSnapshotError):
            snapshot.read_envelope(path)

        # not an envelope at all
        path.write_bytes(b"\x80\x05 definitely not json")
        with pytest.raises(CorruptSnapshotError):
            snapshot.read_envelope(path)

    def test_write_envelope_leaves_no_tmp_behind(self, tmp_path):
        snapshot.write_envelope(tmp_path / "a.ckpt", {"state": "x"}, b"p")
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


# ---------------------------------------------------------------------------
# kill-and-resume equivalence


# figure5 holds the federation across calls; protocol-tournament covers the
# new protocol families' requeue/restore paths in the fast lane
KILL_FAST = ["table1", "figure5", "protocol-tournament"]

# checkpoint_overhead's point slices and snapshots by hand (it measures the
# mechanism) and never routes through Federation.run, so the drive hook --
# and therefore the kill injection -- does not apply to it.
KILL_ALL = [n for n in registry.names() if n != "checkpoint_overhead"]


def _scrub(name: str, value):
    """Drop the wall-clock field `scaling` measures (host-dependent, see
    test_cross_backend.DETERMINISTIC_COLUMNS); everything else must match."""
    if name == "scaling" and isinstance(value, dict):
        return {k: v for k, v in value.items() if k != "wall"}
    return value


def assert_kill_resume_equivalent(name: str, tmp_path) -> None:
    params = tiny_point(name)
    ref_dir = tmp_path / "ref"
    run_dir = tmp_path / "run"
    ref_dir.mkdir()
    run_dir.mkdir()

    reference = run_checkpointed(name, params, ref_dir)
    ref_manifest = read_manifest(ref_dir, name, params)
    total_events = sum(c["events"] or 0 for c in ref_manifest["calls"])
    assert total_events > 4, f"{name}: too few events to kill mid-run"

    # The chained digest is interval-independent (see
    # TestEquivalence.test_interval_does_not_change_digest), so the killed
    # attempt may shrink `every` until a slice boundary lands before the
    # kill and an inflight envelope actually exists to resume from.
    every = 120.0
    while True:
        with pytest.raises(SimulatedEviction):
            run_checkpointed(
                name, params, run_dir, every=every, kill_at=total_events // 2
            )
        if list(run_dir.glob("*.ckpt")):
            break
        assert every > 0.01, f"{name}: no snapshot even at every={every}"
        every /= 8

    resumed = run_checkpointed(name, params, run_dir, every=every)
    assert _scrub(name, resumed) == _scrub(name, reference)
    run_manifest = read_manifest(run_dir, name, params)
    assert call_digests(run_manifest) == call_digests(ref_manifest)
    assert any(c["resumed_at"] is not None for c in run_manifest["calls"]), (
        f"{name}: the second attempt recomputed from zero instead of resuming"
    )


@pytest.mark.parametrize("name", KILL_FAST)
def test_kill_and_resume_matches_uninterrupted(name, tmp_path):
    assert_kill_resume_equivalent(name, tmp_path)


@pytest.mark.slow
@pytest.mark.parametrize("name", [n for n in KILL_ALL if n not in KILL_FAST])
def test_kill_and_resume_matches_uninterrupted_all(name, tmp_path):
    assert_kill_resume_equivalent(name, tmp_path)


class TestEquivalence:
    def test_checkpointing_does_not_change_results(self, tmp_path):
        params = tiny_point("table1")
        exp = registry.get("table1")
        reset_msg_ids()
        plain = exp.point(dict(params))
        checkpointed = run_checkpointed("table1", params, tmp_path)
        assert checkpointed == plain

    def test_interval_does_not_change_digest(self, tmp_path):
        params = tiny_point("table1")
        digests = []
        for i, every in enumerate((60.0, 450.0)):
            d = tmp_path / str(i)
            d.mkdir()
            run_checkpointed("table1", params, d, every=every)
            digests.append(call_digests(read_manifest(d, "table1", params)))
        assert digests[0] == digests[1]


# ---------------------------------------------------------------------------
# fault paths: damaged snapshots demote resume to a from-zero rerun


class TestDamagedSnapshots:
    def _kill_leaving_snapshot(self, name, params, directory):
        ref_manifest = None
        with pytest.raises(SimulatedEviction):
            run_checkpointed(name, params, directory, every=60.0, kill_at=40)
        snaps = sorted(directory.glob("*.c*.ckpt"))
        assert snaps, "the killed attempt wrote no inflight snapshot"
        return snaps

    def test_truncated_envelope_runs_from_zero(self, tmp_path, capsys):
        params = tiny_point("table1")
        ref = run_checkpointed("table1", params, tmp_path / "ref")
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (snap,) = self._kill_leaving_snapshot("table1", params, run_dir)
        snap.write_bytes(snap.read_bytes()[:50])

        resumed = run_checkpointed("table1", params, run_dir)
        assert resumed == ref
        assert not snap.exists(), "unusable snapshot must be deleted"
        assert "discarding unusable snapshot" in capsys.readouterr().err
        manifest = read_manifest(run_dir, "table1", params)
        assert all(c["resumed_at"] is None for c in manifest["calls"])
        assert call_digests(manifest) == call_digests(
            read_manifest(tmp_path / "ref", "table1", params)
        )

    def test_corrupt_payload_runs_from_zero(self, tmp_path, capsys):
        params = tiny_point("table1")
        ref = run_checkpointed("table1", params, tmp_path / "ref")
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (snap,) = self._kill_leaving_snapshot("table1", params, run_dir)
        data = bytearray(snap.read_bytes())
        data[-20] ^= 0xFF
        snap.write_bytes(bytes(data))

        resumed = run_checkpointed("table1", params, run_dir)
        assert resumed == ref
        assert "discarding unusable snapshot" in capsys.readouterr().err

    def test_stale_code_hash_rejected_like_cache_sync(self, tmp_path, capsys):
        params = tiny_point("table1")
        ref = run_checkpointed("table1", params, tmp_path / "ref")
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (snap,) = self._kill_leaving_snapshot("table1", params, run_dir)
        header, payload = snapshot.read_envelope(snap)
        header["code"] = "0" * len(header.get("code") or "40")
        snapshot.write_envelope(snap, header, payload)

        resumed = run_checkpointed("table1", params, run_dir)
        assert resumed == ref
        err = capsys.readouterr().err
        assert "discarding unusable snapshot" in err
        assert "different repro version" in err
        manifest = read_manifest(run_dir, "table1", params)
        assert all(c["resumed_at"] is None for c in manifest["calls"])


# ---------------------------------------------------------------------------
# policy plumbing


class TestPolicy:
    def test_wall_throttle_skips_interval_boundaries(self, tmp_path):
        cfg = CheckpointConfig(
            every=60.0, wall=3600.0, directory=tmp_path, key="k"
        )
        reset_msg_ids()
        fed = make_fed()
        with checkpoint.activate(cfg):
            fed.run()
        # 1800s / 60s = dozens of boundaries; the hour-long wall throttle
        # admits only the first inflight write (plus the forced final one).
        records = cfg._call_records
        assert records and records[0]["events"] > 0
        inflight_writes = 1  # first boundary: nothing written yet
        assert (tmp_path / "k.c0.ckpt").exists()
        header, _ = snapshot.read_envelope(tmp_path / "k.c0.ckpt")
        assert header["state"] == "completed"
        assert inflight_writes == 1

    def test_env_config_round_trip(self):
        env = {
            checkpoint.ENV_EVERY: "120.5",
            checkpoint.ENV_WALL: "30",
            checkpoint.ENV_DIR: "/tmp/ckpt",
        }
        cfg = checkpoint.from_env(env)
        assert (cfg.every, cfg.wall, str(cfg.directory)) == (120.5, 30.0, "/tmp/ckpt")
        assert checkpoint.from_env({}) is None

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            CheckpointConfig(every=0)
        with pytest.raises(ValueError):
            CheckpointConfig(every=10.0, wall=-1)

    def test_point_key_is_order_insensitive_and_experiment_scoped(self):
        a = checkpoint.point_key("table1", {"x": 1, "y": 2})
        b = checkpoint.point_key("table1", {"y": 2, "x": 1})
        c = checkpoint.point_key("fig8", {"x": 1, "y": 2})
        assert a == b != c

    def test_run_point_without_policy_is_a_plain_call(self):
        calls = []
        assert checkpoint.run_point(lambda p: calls.append(p) or 42, {"s": 1}) == 42
        assert calls == [{"s": 1}]


class TestSweepCliFlags:
    def test_wall_and_dir_require_every(self, tmp_path):
        from repro.cli import main

        base = ["sweep", "table1", "--scale", "tiny", "--no-cache"]
        with pytest.raises(SystemExit, match="require --checkpoint-every"):
            main([*base, "--checkpoint-wall", "5"])
        with pytest.raises(SystemExit, match="require --checkpoint-every"):
            main([*base, "--checkpoint-dir", str(tmp_path)])

    def test_local_sweep_checkpoints_via_env_and_restores_it(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        ckpt_dir = tmp_path / "snaps"
        rc = main(
            [
                "sweep", "table1", "--scale", "tiny", "--no-cache",
                "--checkpoint-every", "60",
                "--checkpoint-dir", str(ckpt_dir),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        manifests = list(ckpt_dir.glob("*.done.json"))
        assert len(manifests) == 1, "the sweep's point left no done manifest"
        assert not list(ckpt_dir.glob("*.ckpt")), "snapshots must be GC'd"
        for key in (checkpoint.ENV_EVERY, checkpoint.ENV_WALL, checkpoint.ENV_DIR):
            assert key not in os.environ, f"{key} leaked past the sweep"


class TestWireFormat:
    def test_wire_job_without_checkpoint_is_byte_identical_to_old_format(self):
        job = make_wire_job("table1", {"seed": 1})
        assert "checkpoint" not in job
        assert sorted(job) == ["code_hash", "experiment", "params"]

    def test_wire_job_carries_checkpoint_policy(self):
        policy = {"every": 60.0, "wall": None, "dir": "/spool/snaps", "key": "k"}
        job = make_wire_job("table1", {"seed": 1}, checkpoint=policy)
        assert job["checkpoint"] == policy


# ---------------------------------------------------------------------------
# the batch requeue path: eviction mid-run, requeued point resumes


class MidRunEvictingTransport:
    """An in-memory k8s control plane whose pods can die *mid-simulation*.

    ``kills`` maps ``(job_seq, index) -> event_budget``: the matching pod
    runs the real worker with ``$REPRO_CHECKPOINT_KILL_EVENT`` set, so it
    writes inflight snapshots and then genuinely dies partway through --
    terminal phase recorded, no result file.  The requeued copy (a later
    job) runs clean and resumes from the dead pod's latest envelope.
    """

    def __init__(self, kills: dict) -> None:
        self.kills = dict(kills)
        self.seq = 0
        self.jobs: dict = {}
        self.job_dirs: dict = {}
        self.cancelled: list = []

    def submit(self, job_dir, spec, n_tasks) -> str:
        from repro.experiments.remote_worker import run_job

        self.seq += 1
        name = f"job-{self.seq}"
        phases = {}
        for i in range(n_tasks):
            job = json.loads((job_dir / "tasks" / f"{i}.json").read_text())
            budget = self.kills.get((self.seq, i))
            if budget is not None:
                os.environ[ENV_KILL] = str(budget)
            try:
                reset_msg_ids()  # each pod is a fresh worker process
                envelope = run_job(job)
            except SimulatedEviction:
                phases[i] = "FAILED"
                continue
            finally:
                os.environ.pop(ENV_KILL, None)
            (job_dir / "results" / f"{i}.json").write_text(json.dumps(envelope))
            phases[i] = "SUCCEEDED"
        self.jobs[name] = phases
        self.job_dirs[name] = job_dir
        return name

    def poll(self, job_id: str) -> dict:
        return dict(self.jobs.get(job_id, {}))

    def cancel(self, target: str) -> None:
        self.cancelled.append(target)


class TestBatchRequeueResume:
    def test_evicted_point_resumes_on_the_requeued_job(self, tmp_path):
        from conftest import make_k8s_backend
        from repro.experiments.runner import run_experiment

        overrides = {**TINY, "seed": 7}
        reset_msg_ids()
        serial = run_experiment("table1", overrides=overrides, jobs=1)

        # Kill every first-job pod after 40 events; requeues run clean.
        kills = {(1, i): 40 for i in range(len(serial.grid))}
        spool = tmp_path / "spool"
        backend = make_k8s_backend(
            spool, MidRunEvictingTransport(kills), checkpoint={"every": 60.0}
        )
        try:
            report = run_experiment("table1", overrides=overrides, backend=backend)
        finally:
            backend.shutdown()

        assert report.retries == len(serial.grid)
        assert report.result.render() == serial.result.render()

        # Every requeued point genuinely resumed -- its done manifest says
        # where the transplant picked up -- and its snapshots were GC'd.
        snap_dir = spool / "snapshots"
        manifests = sorted(snap_dir.glob("*.done.json"))
        assert len(manifests) == len(serial.grid)
        for path in manifests:
            doc = json.loads(path.read_text())
            assert any(c["resumed_at"] is not None for c in doc["calls"]), (
                f"{path.name}: requeued point recomputed from zero"
            )
        assert not list(snap_dir.glob("*.ckpt"))

    def test_wire_checkpoint_key_is_stable_across_requeues(self, tmp_path):
        """The requeue resumes because the key is attempt-independent."""
        from conftest import make_k8s_backend
        from repro.experiments.backends import PointTask

        backend = make_k8s_backend(
            tmp_path / "spool", checkpoint={"every": 60.0}
        )
        try:
            exp = registry.get("table1")
            params = tiny_point("table1")
            task = PointTask(experiment="table1", params=params, fn=exp.point)
            first = backend._wire_checkpoint(task)
            second = backend._wire_checkpoint(task)
        finally:
            backend.shutdown()
        assert first == second
        assert first["key"] == checkpoint.point_key("table1", params)
        assert first["dir"] == str(tmp_path / "spool" / "snapshots")


# ---------------------------------------------------------------------------
# spool hygiene


class TestSpoolHygiene:
    def test_completed_point_gcs_snapshots_but_keeps_manifest(self, tmp_path):
        params = tiny_point("table1")
        run_checkpointed("table1", params, tmp_path, every=60.0)
        key = checkpoint.point_key("table1", params)
        assert not list(tmp_path.glob(f"{key}.c*.ckpt"))
        assert (tmp_path / f"{key}.done.json").exists()

    def test_gc_point_only_touches_its_key(self, tmp_path):
        for name in ("k1.c0.ckpt", "k1.c1.ckpt", "k2.c0.ckpt", "k1.done.json"):
            (tmp_path / name).write_bytes(b"x")
        assert checkpoint.gc_point(tmp_path, "k1") == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "k1.done.json",
            "k2.c0.ckpt",
        ]

    def test_sweep_orphans_removes_only_tmp_files(self, tmp_path):
        (tmp_path / "a.tmp").write_bytes(b"x")
        (tmp_path / "b.tmp").write_bytes(b"x")
        (tmp_path / "keep.ckpt").write_bytes(b"x")
        assert checkpoint.sweep_orphans(tmp_path) == 2
        assert [p.name for p in tmp_path.iterdir()] == ["keep.ckpt"]
        assert checkpoint.sweep_orphans(tmp_path / "missing") == 0

    def test_runner_gc_for_cleans_a_dead_workers_leftovers(self, tmp_path):
        params = {"seed": 1}
        key = checkpoint.point_key("table1", params)
        (tmp_path / f"{key}.c0.ckpt").write_bytes(b"x")
        cfg = CheckpointConfig(every=60.0, directory=tmp_path)
        with checkpoint.activate(cfg):
            checkpoint.gc_for("table1", params)
        assert not list(tmp_path.glob("*.ckpt"))
