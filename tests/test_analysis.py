"""Tests for the analysis subpackage: consistency checker, rollback costs,
reporting."""

import pytest

from repro.analysis.consistency import check_invariants, verify_consistency
from repro.analysis.reporting import format_series, format_table
from repro.analysis.rollback_cost import rollback_costs
from repro.network.message import NodeId
from tests.conftest import make_federation


class TestVerifyConsistency:
    def test_clean_run_is_consistent(self):
        fed = make_federation(clc_period=100.0, total_time=600.0, chatty=True)
        fed.run()
        report = verify_consistency(fed)
        assert report.ok
        assert report.checked_messages >= report.delivered

    def test_detects_fabricated_ghost(self):
        """Manually corrupting the state must be caught."""
        fed = make_federation(clc_period=100.0, total_time=300.0, chatty=True)
        fed.run()
        cs = fed.protocol.cluster_states[1]
        cs.delivered_ids.add(999_999_999)  # delivery without any send
        report = verify_consistency(fed)
        assert not report.ok
        assert any(kind == "ghost" for kind, _ in report.violations)

    def test_detects_fabricated_lost_message(self):
        fed = make_federation(clc_period=100.0, total_time=300.0, chatty=True)
        fed.run()
        cs0 = fed.protocol.cluster_states[0]
        # forge a log entry whose message the receiver never saw
        from repro.network.message import Message, MessageKind
        from repro.core.hc3i import Piggyback

        fake = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP, size=10,
            piggyback=Piggyback(sn=1, epoch=0),
        )
        cs0.sent_log.add(fake, send_sn=1)
        report = verify_consistency(fed, allow_in_flight=False)
        assert not report.ok
        assert any(kind == "lost" for kind, _ in report.violations)

    def test_in_flight_allowance(self):
        fed = make_federation(clc_period=100.0, total_time=300.0, chatty=True)
        fed.run()
        cs0 = fed.protocol.cluster_states[0]
        from repro.network.message import Message, MessageKind
        from repro.core.hc3i import Piggyback

        fake = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP, size=10,
            piggyback=Piggyback(sn=1, epoch=0),
        )
        cs0.sent_log.add(fake, send_sn=1)
        report = verify_consistency(fed, allow_in_flight=True)
        assert report.ok
        assert report.in_flight_allowance >= 1

    def test_non_hc3i_protocol_rejected(self):
        fed = make_federation(protocol="pessimistic-log", total_time=50.0)
        fed.run()
        with pytest.raises(TypeError):
            verify_consistency(fed)

    def test_report_str(self):
        fed = make_federation(clc_period=100.0, total_time=200.0)
        fed.run()
        report = verify_consistency(fed)
        assert "consistent" in str(report)


class TestCheckInvariants:
    def test_clean_run_no_violations(self):
        fed = make_federation(clc_period=100.0, total_time=500.0, chatty=True)
        fed.run()
        assert check_invariants(fed) == []

    def test_detects_sn_ddv_mismatch(self):
        fed = make_federation(clc_period=100.0, total_time=200.0)
        fed.run()
        fed.protocol.cluster_states[0].sn += 5
        problems = check_invariants(fed)
        assert problems
        assert any("own entry" in p or "sn" in p for p in problems)

    def test_non_hc3i_returns_empty(self):
        fed = make_federation(protocol="global-coordinated", total_time=50.0)
        fed.run()
        assert check_invariants(fed) == []


class TestRollbackCosts:
    def test_counts_episodes(self):
        fed = make_federation(
            clc_period=80.0, total_time=1000.0, chatty=True, seed=4
        )
        fed.start()
        fed.sim.run(until=300.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=700.0)
        fed.inject_failure(NodeId(1, 1))
        fed.run()
        costs = rollback_costs(fed)
        assert costs.failures == 2
        assert len(costs.clusters_rolled_per_failure) == 2
        assert costs.mean_clusters_per_failure >= 1.0

    def test_no_failures_zero_costs(self):
        fed = make_federation(clc_period=100.0, total_time=300.0)
        fed.run()
        costs = rollback_costs(fed)
        assert costs.failures == 0
        assert costs.rollbacks == 0
        assert costs.lost_work_node_seconds == 0.0
        assert costs.mean_clusters_per_failure == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [("a", 1), ("long-name", 123456)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned widths

    def test_format_table_floats(self):
        text = format_table(["x"], [(1.5,), (2.0,)])
        assert "1.5" in text
        assert "2" in text  # integral floats rendered without .0

    def test_format_series(self):
        text = format_series(
            "x", [1, 2], {"a": [10, 20], "b": [30, 40]}, title="S"
        )
        assert "x" in text and "a" in text and "b" in text
        assert "10" in text and "40" in text

    def test_series_rows_follow_xs(self):
        text = format_series("x", [5, 9], {"y": [1, 2]})
        lines = text.splitlines()
        assert lines[-2].strip().startswith("5")
        assert lines[-1].strip().startswith("9")


class TestDescribeFederation:
    def test_hc3i_state_dump(self):
        from repro.analysis.describe import describe_federation

        fed = make_federation(clc_period=100.0, total_time=400.0, chatty=True)
        fed.run()
        text = describe_federation(fed)
        assert "protocol=hc3i" in text
        assert "c0" in text and "c1" in text
        assert "stored CLCs" in text
        assert "initial" in text  # the first CLC's cause appears

    def test_without_clc_detail(self):
        from repro.analysis.describe import describe_federation

        fed = make_federation(clc_period=100.0, total_time=300.0)
        fed.run()
        text = describe_federation(fed, include_clcs=False)
        assert "-- cluster" not in text

    def test_non_hc3i_protocol(self):
        from repro.analysis.describe import describe_federation

        fed = make_federation(protocol="global-coordinated", total_time=50.0)
        fed.run()
        text = describe_federation(fed)
        assert "global-coordinated" in text
