"""Protocol tests: rollback, alerts, recovery line, replays (§3.3-§3.4)."""

from repro.app.process import scripted_sender_factory
from repro.core.recovery_line import cascade_targets
from repro.network.message import NodeId
from tests.conftest import make_federation


def scripted_fed(scripts, n_clusters=2, nodes=2, total_time=400.0, **kw):
    return make_federation(
        n_clusters=n_clusters,
        nodes=nodes,
        clc_period=None,
        total_time=total_time,
        app_factory=scripted_sender_factory(scripts),
        **kw,
    )


class TestFaultyClusterRollback:
    def test_rolls_back_to_last_clc(self):
        fed = make_federation(clc_period=50.0, total_time=400.0)
        fed.start()
        fed.sim.run(until=180.0)
        cs = fed.protocol.cluster_states[0]
        last_sn = cs.store.last().sn
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=200.0)
        assert cs.sn == last_sn
        rec = fed.tracer.first("rollback", cluster=0)
        assert rec is not None and rec["to_sn"] == last_sn

    def test_epoch_increments(self):
        fed = make_federation(clc_period=50.0, total_time=400.0)
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 0))
        fed.sim.run(until=150.0)
        assert fed.protocol.cluster_states[0].rollback_epoch == 1

    def test_newer_clcs_discarded(self):
        fed = make_federation(clc_period=30.0, total_time=400.0)
        fed.start()
        fed.sim.run(until=100.0)
        cs = fed.protocol.cluster_states[0]
        n_before = len(cs.store)
        assert n_before >= 3
        # roll back manually to an older record (simulating a deep alert)
        target = cs.store.records[0]
        fed.protocol.recovery._do_rollback(0, target)
        assert len(cs.store) == 1
        assert cs.store.discarded_by_rollback == n_before - 1
        assert cs.sn == target.sn

    def test_lost_work_accounted(self):
        fed = make_federation(clc_period=50.0, total_time=400.0)
        fed.start()
        fed.sim.run(until=180.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=200.0)
        tally = fed.stats.tally("rollback/lost_work")
        assert tally.count == 3  # one per node of the cluster
        assert tally.mean > 0

    def test_apps_restart_after_recovery(self):
        fed = make_federation(clc_period=50.0, total_time=400.0, chatty=True)
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=150.0)
        for node in fed.clusters[0].nodes:
            assert node.up
            assert node.app_process is not None and node.app_process.alive

    def test_alerts_sent_to_every_other_cluster(self):
        fed = make_federation(n_clusters=3, clc_period=50.0, total_time=400.0)
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(1, 0))
        results = fed.run()
        assert results.counter("rollback/alerts_sent") >= 2

    def test_alert_broadcast_inside_cluster(self):
        fed = make_federation(nodes=4, clc_period=50.0, total_time=400.0)
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 1))
        results = fed.run()
        # 1 alert to cluster 1's leader, re-broadcast to its 3 other nodes
        assert results.counter("net/protocol/alert") == 1
        assert results.counter("net/protocol/alert_local") == 3


class TestDependentClusterRollback:
    def three_cluster_chain(self):
        """c0 sends to c1, then c1 checkpoints and sends to c2."""
        fed = scripted_fed(
            {
                NodeId(0, 0): [(10.0, NodeId(1, 0), 100)],
                NodeId(1, 0): [(50.0, NodeId(2, 0), 100)],
            },
            n_clusters=3,
        )
        return fed

    def test_receiver_rolls_back_on_dependency(self):
        fed = self.three_cluster_chain()
        fed.start()
        fed.sim.run(until=100.0)
        # c1: sn 2 (initial + forced by m1); it then sent to c2 with SN 2,
        # so c2 took a forced CLC with ddv[1] = 2.
        cs1 = fed.protocol.cluster_states[1]
        cs2 = fed.protocol.cluster_states[2]
        assert cs1.sn == 2 and cs2.ddv[1] == 2
        # kill a node of c1: it rolls to sn 2 (its last CLC) -> alert(2);
        # c2's ddv[1] = 2 >= 2 -> c2 rolls to its forced CLC (sn 2).
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=200.0)
        assert fed.tracer.first("rollback", cluster=2) is not None
        assert cs2.sn == 2

    def test_unrelated_cluster_does_not_roll(self):
        fed = self.three_cluster_chain()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=200.0)
        # c0 never received anything: it must not roll back
        assert fed.tracer.first("rollback", cluster=0) is None

    def test_live_cascade_matches_pure_function(self):
        fed = self.three_cluster_chain()
        fed.start()
        fed.sim.run(until=100.0)
        states = fed.protocol.cluster_states
        stored = [cs.store.ddv_list() for cs in states]
        current = [cs.ddv_tuple() for cs in states]
        predicted = cascade_targets(stored, current, failed=1)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=200.0)
        for c, target in enumerate(predicted):
            if target is None:
                assert fed.tracer.first("rollback", cluster=c) is None
            else:
                rec = fed.tracer.first("rollback", cluster=c)
                assert rec is not None and rec["to_sn"] == target

    def test_no_double_rollback_same_alert(self):
        fed = self.three_cluster_chain()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=300.0)
        # each cluster rolled back at most once
        for c in range(3):
            assert fed.tracer.count("rollback", cluster=c) <= 1


class TestReplays:
    def chain_with_lost_delivery(self):
        """c0 sends m at t=10 (forces CLC in c1), then c1 advances with a
        manual CLC at t=50 and c0 sends m2 at t=60 (delivered in epoch 3).
        A failure in c1 at t=80 rolls it to SN 3 < ack(m2)=4 -> replay m2.
        """
        fed = scripted_fed({
            NodeId(0, 0): [
                (10.0, NodeId(1, 0), 100),
                (60.0, NodeId(1, 0), 100),
            ],
        })
        fed.start()
        fed.sim.schedule_at(50.0, fed.protocol.request_checkpoint, 1)
        return fed

    def test_lost_delivery_replayed(self):
        fed = self.chain_with_lost_delivery()
        fed.sim.run(until=70.0)
        entries = sorted(
            fed.protocol.cluster_states[0].sent_log, key=lambda e: e.msg.msg_id
        )
        assert [e.ack_sn for e in entries] == [2, 4]
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=300.0)
        assert fed.results().counter("rollback/replays") == 1
        # the replayed message was delivered again in the new timeline
        cs1 = fed.protocol.cluster_states[1]
        assert entries[1].msg.msg_id in cs1.delivered_ids

    def test_survived_delivery_not_replayed(self):
        fed = self.chain_with_lost_delivery()
        fed.sim.run(until=70.0)
        entries = sorted(
            fed.protocol.cluster_states[0].sent_log, key=lambda e: e.msg.msg_id
        )
        m1 = entries[0]
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=300.0)
        assert m1.replays == 0  # ack 2 <= alert SN 3: survived the rollback

    def test_replay_reacked(self):
        fed = self.chain_with_lost_delivery()
        fed.sim.run(until=70.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=300.0)
        entries = sorted(
            fed.protocol.cluster_states[0].sent_log, key=lambda e: e.msg.msg_id
        )
        assert entries[1].ack_sn is not None  # fresh ack after replay

    def test_sender_rollback_drops_its_sends(self):
        """If the SENDER rolls back, sends from erased epochs leave the log
        and are never replayed (they would be ghosts)."""
        fed = scripted_fed({
            NodeId(0, 0): [(10.0, NodeId(1, 0), 100)],
        })
        fed.start()
        fed.sim.run(until=50.0)
        cs0 = fed.protocol.cluster_states[0]
        assert len(cs0.sent_log) == 1
        # c0's send happened in epoch 1 (after initial CLC, before any
        # other), so rolling c0 back to its initial CLC erases it.
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=300.0)
        assert len(cs0.sent_log) == 0
        assert cs0.sent_log.dropped_by_rollback == 1

    def test_ghost_message_erased_at_receiver(self):
        """The receiver of a now-ghost message rolls back past its
        delivery (its DDV entry >= the alert SN guarantees it)."""
        fed = scripted_fed({
            NodeId(0, 0): [(10.0, NodeId(1, 0), 100)],
        })
        fed.start()
        fed.sim.run(until=50.0)
        sent_id = next(iter(fed.protocol.cluster_states[0].sent_log)).msg.msg_id
        cs1 = fed.protocol.cluster_states[1]
        assert sent_id in cs1.delivered_ids
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=300.0)
        assert sent_id not in cs1.delivered_ids

    def test_no_replay_mode_rolls_sender_back(self):
        fed = scripted_fed(
            {
                NodeId(0, 0): [
                    (10.0, NodeId(1, 0), 100),
                    (60.0, NodeId(1, 0), 100),
                ],
            },
            protocol_options={"replay_enabled": False},
        )
        fed.start()
        fed.sim.schedule_at(50.0, fed.protocol.request_checkpoint, 1)
        fed.sim.run(until=70.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=300.0)
        results = fed.results()
        assert results.counter("rollback/replays") == 0
        assert results.counter("rollback/no_log_forced") == 1
        assert fed.tracer.first("rollback", cluster=0) is not None


class TestNoOpGuard:
    def test_repeated_alert_does_not_loop(self):
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        fed.start()
        fed.sim.run(until=50.0)
        # deliver the same alert twice by hand
        mgr = fed.protocol.recovery
        mgr.on_alert(1, faulty=0, alert_sn=1, faulty_epoch=1)
        rollbacks_after_first = fed.tracer.count("rollback", cluster=1)
        mgr.on_alert(1, faulty=0, alert_sn=1, faulty_epoch=1)
        fed.sim.run(until=100.0)
        assert fed.tracer.count("rollback", cluster=1) == rollbacks_after_first

    def test_cascade_settles(self):
        """Bidirectional traffic + failure: the alert storm terminates."""
        fed = make_federation(
            n_clusters=3, clc_period=40.0, total_time=600.0, chatty=True
        )
        fed.start()
        fed.sim.run(until=300.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=600.0)
        # bounded number of rollbacks (no livelock)
        assert fed.results().counter("rollback/total") <= 6
