"""Tests for the SLURM batch backend.

Two stub levels, mirroring the SSH backend's test strategy:

* :class:`conftest.InMemorySlurmTransport` -- a pure-python scheduler that
  executes array tasks in-process, for fast unit coverage of batching,
  polling, fault handling, and the runner's requeue path.
* ``tools/stub_slurm.py`` behind ``$REPRO_SLURM_COMMAND`` -- a subprocess
  mini-SLURM driven through the *real* :class:`SlurmCliTransport`
  (``sbatch --parsable``, ``sacct`` parsing, script execution via bash),
  for end-to-end coverage without a slurmctld anywhere.
"""

from __future__ import annotations

import json
import sys

import pytest

from conftest import REPO_ROOT, InMemorySlurmTransport, make_slurm_backend
from repro.cli import main
from repro.experiments.backends import (
    BackendUnavailableError,
    PointTask,
    RemoteCodeMismatchError,
    RemotePointError,
    SlurmBackend,
    SlurmCliTransport,
    WorkerLostError,
)
from repro.experiments.backends.slurm import (
    _expand_indices,
    _parse_sacct,
    _parse_squeue,
    default_slurm_command,
    default_spool_dir,
)
from repro.experiments.registry import canonical_params
from repro.experiments.runner import run_experiment

TINY = {"nodes": 4, "total_time": 1800.0}
FIG67_TINY = {"delays_min": [5, 15], **TINY, "seed": 2}


@pytest.fixture
def stub_slurm_env(tmp_path, monkeypatch):
    """Route SlurmCliTransport at tools/stub_slurm.py; returns the spool dir.

    Also exports PYTHONPATH to the environment the stub's array tasks
    inherit -- the moral equivalent of real sbatch's ``--export=ALL``
    (pytest's ``pythonpath = ["src"]`` is in-process only).
    """
    monkeypatch.setenv("REPRO_SLURM_STUB_STATE", str(tmp_path / "stub-state.json"))
    monkeypatch.setenv(
        "REPRO_SLURM_COMMAND", f"{sys.executable} {REPO_ROOT / 'tools' / 'stub_slurm.py'}"
    )
    import os

    existing = os.environ.get("PYTHONPATH")
    src = str(REPO_ROOT / "src")
    monkeypatch.setenv("PYTHONPATH", f"{src}:{existing}" if existing else src)
    spool = tmp_path / "spool"
    return spool


def submit_one(backend: SlurmBackend, task: PointTask, timeout: float = 30.0):
    future = backend.submit(task)
    backend.flush()
    return future.result(timeout=timeout)


class TestInMemoryTransport:
    def test_matches_jobs1_byte_identically(self, tmp_path):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        transport = InMemorySlurmTransport()
        backend = make_slurm_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.result.series == serial.result.series
        assert report.backend == "slurm"
        assert report.host_counts == {"slurm:1": 2}

    def test_burst_is_batched_into_one_array_job(self, tmp_path):
        """All cache-missing points of one sweep go out as ONE sbatch call."""
        transport = InMemorySlurmTransport()
        backend = make_slurm_backend(tmp_path / "spool", transport)
        try:
            run_experiment(
                "fig6-fig7",
                overrides={**TINY, "delays_min": [5, 15, 30], "seed": 2},
                backend=backend,
            )
        finally:
            backend.shutdown()
        assert transport.seq == 1  # one array job, three tasks
        assert transport.jobs["1"] == {0: "COMPLETED", 1: "COMPLETED", 2: "COMPLETED"}

    def test_killed_task_is_requeued_on_survivors(self, tmp_path):
        """A mid-sweep scancel of one array task must not lose the point."""
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)

        def kill_first_task_of_first_job(job_seq, index, job):
            return "CANCELLED" if (job_seq, index) == (1, 0) else None

        transport = InMemorySlurmTransport(fault=kill_first_task_of_first_job)
        backend = make_slurm_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 1
        assert transport.seq == 2  # the requeued point went out as a fresh job
        assert report.host_counts == {"slurm:1": 1, "slurm:2": 1}

    def test_whole_job_kill_requeues_every_point(self, tmp_path):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        transport = InMemorySlurmTransport(
            fault=lambda job_seq, index, job: "NODE_FAIL" if job_seq == 1 else None
        )
        backend = make_slurm_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 2
        assert all(host.startswith("slurm:") for host in report.host_counts)

    def test_retry_budget_exhaustion_raises_sweep_error(self, tmp_path):
        from repro.experiments.runner import SweepError

        transport = InMemorySlurmTransport(fault=lambda *a: "FAILED")
        backend = make_slurm_backend(tmp_path / "spool", transport)
        try:
            with pytest.raises(SweepError, match="giving up"):
                run_experiment(
                    "table1",
                    overrides={**TINY, "seed": 1},
                    backend=backend,
                    max_retries=2,
                )
        finally:
            backend.shutdown()

    def test_point_error_is_not_retried(self, tmp_path):
        backend = make_slurm_backend(tmp_path / "spool")
        try:
            task = PointTask(
                experiment="does-not-exist", params={"x": 1}, fn=canonical_params
            )
            with pytest.raises(RemotePointError, match="does-not-exist"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_code_mismatch_is_refused(self, tmp_path):
        class LiarTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                self.seq += 1
                for i in range(n_tasks):
                    (job_dir / "results" / f"{i}.json").write_text(
                        json.dumps(
                            {"ok": True, "code_hash": "f" * 64, "elapsed": 0.0, "pickle": ""}
                        )
                    )
                self.jobs[str(self.seq)] = dict.fromkeys(range(n_tasks), "COMPLETED")
                return str(self.seq)

        backend = make_slurm_backend(tmp_path / "spool", LiarTransport())
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(RemoteCodeMismatchError, match="different repro sources"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_garbled_result_file_is_a_worker_loss(self, tmp_path):
        class GarblerTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                self.seq += 1
                for i in range(n_tasks):
                    (job_dir / "results" / f"{i}.json").write_text("{truncat")
                self.jobs[str(self.seq)] = dict.fromkeys(range(n_tasks), "COMPLETED")
                return str(self.seq)

        backend = make_slurm_backend(tmp_path / "spool", GarblerTransport())
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="garbled result file"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_vanished_task_is_lost_after_unknown_grace(self, tmp_path):
        class AmnesiacTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                self.seq += 1
                return str(self.seq)  # never runs anything, never remembers it

        backend = make_slurm_backend(
            tmp_path / "spool", AmnesiacTransport(), unknown_grace=3
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="vanished"):
                submit_one(backend, task, timeout=30.0)
        finally:
            backend.shutdown()

    def test_completed_without_result_file_is_lost(self, tmp_path):
        class NoOutputTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                self.seq += 1
                self.jobs[str(self.seq)] = dict.fromkeys(range(n_tasks), "COMPLETED")
                return str(self.seq)

        backend = make_slurm_backend(
            tmp_path / "spool", NoOutputTransport(), completed_grace=2
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="completed without a result"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_point_timeout_cancels_and_loses_the_task(self, tmp_path):
        class StuckTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                self.seq += 1
                self.jobs[str(self.seq)] = dict.fromkeys(range(n_tasks), "RUNNING")
                return str(self.seq)

        transport = StuckTransport()
        backend = make_slurm_backend(tmp_path / "spool", transport, point_timeout=0.05)
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="no result within"):
                submit_one(backend, task)
            assert "1_0" in transport.cancelled  # the stuck array task was scancelled
        finally:
            backend.shutdown()

    def test_failed_submission_is_a_retryable_worker_loss(self, tmp_path):
        class FullQueueTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                self.seq += 1
                if self.seq == 1:
                    raise WorkerLostError("slurm", "sbatch exit 1: queue limit")
                return super().submit(job_dir, script, n_tasks)

        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = make_slurm_backend(tmp_path / "spool", FullQueueTransport())
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 2

    def test_unreachable_scheduler_aborts_the_sweep(self, tmp_path):
        class NoSchedulerTransport(InMemorySlurmTransport):
            def submit(self, job_dir, script, n_tasks):
                raise BackendUnavailableError("cannot launch sbatch: no such file")

        backend = make_slurm_backend(tmp_path / "spool", NoSchedulerTransport())
        try:
            with pytest.raises(BackendUnavailableError, match="sbatch"):
                run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)
        finally:
            backend.shutdown()

    def test_unwritable_spool_fails_the_sweep_instead_of_hanging(self):
        """A bad --spool path must surface as a sweep failure, not a hang."""
        from pathlib import Path

        from repro.experiments.runner import SweepError

        backend = make_slurm_backend(Path("/dev/null/not-a-dir"))
        try:
            with pytest.raises(SweepError, match="giving up"):
                run_experiment(
                    "table1",
                    overrides={**TINY, "seed": 1},
                    backend=backend,
                    max_retries=1,
                )
        finally:
            backend.shutdown()

    def test_successful_job_spool_is_cleaned_up(self, tmp_path):
        spool = tmp_path / "spool"
        transport = InMemorySlurmTransport()
        backend = make_slurm_backend(spool, transport)
        try:
            run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)
        finally:
            backend.shutdown()
        assert not list(spool.rglob("job-*")), "job dirs should be removed on success"

    def test_failed_job_spool_is_kept_for_post_mortem(self, tmp_path):
        spool = tmp_path / "spool"
        transport = InMemorySlurmTransport(
            fault=lambda job_seq, index, job: "FAILED" if job_seq == 1 else None
        )
        backend = make_slurm_backend(spool, transport)
        try:
            run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)
        finally:
            backend.shutdown()
        kept = [p.name for p in spool.rglob("job-*") if p.is_dir()]
        assert "job-0001" in kept  # the failed job's spool survives


class TestScriptRendering:
    def test_script_has_array_directive_and_worker_line(self, tmp_path):
        backend = SlurmBackend(
            transport=InMemorySlurmTransport(),
            spool=tmp_path,
            python="/opt/py/bin/python3",
            cwd="/srv/hc3i repro",  # space: quoting must hold
            pythonpath="src",
            sbatch_options=("--partition=short", "--time=30"),
        )
        script = backend._render_script(tmp_path / "job-0001", 7)
        assert "#SBATCH --array=0-6" in script
        assert "#SBATCH --partition=short" in script
        assert "#SBATCH --time=30" in script
        assert "cd '/srv/hc3i repro'" in script
        assert "export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}" in script
        assert "/opt/py/bin/python3 -m repro.experiments.remote_worker" in script
        assert '&& mv "$out.tmp" "$out"' in script
        backend.shutdown()


class TestSchedulerParsing:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("3", [3]),
            ("[0-4]", [0, 1, 2, 3, 4]),
            ("0,2-4", [0, 2, 3, 4]),
            ("[0-8%2]", list(range(9))),
        ],
    )
    def test_expand_indices(self, token, expected):
        assert _expand_indices(token) == expected

    @pytest.mark.parametrize("token", ["", "garbage"])
    def test_expand_indices_rejects_garbage(self, token):
        with pytest.raises(ValueError):
            _expand_indices(token)

    def test_parse_sacct_filters_and_normalizes(self):
        out = (
            "123_0|COMPLETED\n"
            "123_1|CANCELLED by 0\n"
            "123_[2-3]|PENDING\n"
            "124_0|FAILED\n"  # different job: ignored
            "123_0.batch|COMPLETED\n"  # job step: ignored
        )
        assert _parse_sacct(out, "123") == {
            0: "COMPLETED",
            1: "CANCELLED",
            2: "PENDING",
            3: "PENDING",
        }

    def test_parse_squeue_expands_ranges(self):
        out = "0-2|PENDING\n4|RUNNING\n"
        assert _parse_squeue(out) == {
            0: "PENDING",
            1: "PENDING",
            2: "PENDING",
            4: "RUNNING",
        }

    def test_default_command_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLURM_COMMAND", "python /x/stub.py")
        assert default_slurm_command() == ("python", "/x/stub.py")
        monkeypatch.delenv("REPRO_SLURM_COMMAND")
        assert default_slurm_command() == ()

    def test_default_spool_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SLURM_SPOOL", str(tmp_path / "sp"))
        assert default_spool_dir() == tmp_path / "sp"


class TestStubSlurmEndToEnd:
    """Through the real SlurmCliTransport against tools/stub_slurm.py."""

    def test_matches_jobs1_byte_identically(self, stub_slurm_env):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = SlurmBackend(
            transport=SlurmCliTransport(),
            spool=stub_slurm_env,
            python=sys.executable,
            cwd=str(REPO_ROOT),
            pythonpath="src",
            linger=0.01,
            poll_interval=0.05,
        )
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.backend == "slurm"
        assert sum(report.host_counts.values()) == 2

    def test_killed_array_task_is_requeued(self, stub_slurm_env, monkeypatch):
        monkeypatch.setenv("REPRO_SLURM_STUB_KILL", "1:0")
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = SlurmBackend(
            transport=SlurmCliTransport(),
            spool=stub_slurm_env,
            python=sys.executable,
            cwd=str(REPO_ROOT),
            pythonpath="src",
            linger=0.01,
            poll_interval=0.05,
        )
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 1

    def test_missing_sbatch_aborts_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SLURM_COMMAND", "/nonexistent/sbatch-wrapper")
        backend = SlurmBackend(
            transport=SlurmCliTransport(), spool=tmp_path, linger=0.01, poll_interval=0.05
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(BackendUnavailableError, match="cannot launch sbatch"):
                submit_one(backend, task)
        finally:
            backend.shutdown()


class TestSweepCliSlurmFlags:
    def test_cli_end_to_end_matches_jobs1(self, stub_slurm_env, capsys):
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--backend", "slurm", "--spool", str(stub_slurm_env)]
        ) == 0
        over_slurm = json.loads(capsys.readouterr().out)
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--jobs", "1"]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert over_slurm["rows"] == serial["rows"]
        assert over_slurm["headers"] == serial["headers"]
        assert over_slurm["backend"] == "slurm"
        assert over_slurm["host_counts"] == {"slurm:1": 1}

    def test_spool_defaults_under_explicit_cache_dir(self, stub_slurm_env, tmp_path, capsys):
        """--cache-dir on a shared FS must carry the spool with it."""
        cache_dir = tmp_path / "shared-cache"
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--backend", "slurm",
             "--cache-dir", str(cache_dir)]
        ) == 0
        assert "backend=slurm" in capsys.readouterr().out
        assert (cache_dir / "slurm-spool").is_dir()

    def test_spool_without_slurm_backend_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="only apply to --backend slurm"):
            main(["sweep", "table1", "--spool", str(tmp_path)])

    def test_sbatch_opt_without_slurm_backend_is_an_error(self):
        with pytest.raises(SystemExit, match="only apply to --backend slurm"):
            main(["sweep", "table1", "--sbatch-opt=--partition=x"])
