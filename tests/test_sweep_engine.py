"""Tests for the parallel experiment engine: registry, cache, runner, CLI."""

import dataclasses
import json

import pytest

from repro.cli import SCALE_PROFILES, main
from repro.experiments import registry
from repro.experiments.cache import ResultCache, code_version_hash
from repro.experiments.registry import canonical_params, derive_seed
from repro.experiments.runner import run_experiment
from repro.experiments.table1 import table1_message_counts

TINY = {"nodes": 4, "total_time": 1800.0}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = registry.names()
        for expected in (
            "table1",
            "table2",
            "table3",
            "no-gc",
            "figure5",
            "fig6-fig7",
            "fig8",
            "fig9",
            "overhead",
            "robustness",
            "mtbf",
            "scaling",
            "baselines",
            "ablation-transitive",
            "ablation-logging",
            "ablation-incremental",
            "ablation-replication",
            "ablation-gc-period",
        ):
            assert expected in names

    def test_listing_is_sorted_and_titled(self):
        experiments = registry.all_experiments()
        assert [e.name for e in experiments] == sorted(e.name for e in experiments)
        for exp in experiments:
            assert exp.title
            assert callable(exp.grid) and callable(exp.point) and callable(exp.reduce)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            registry.get("nope")

    def test_grid_kwargs_filters_unknown_keys(self):
        exp = registry.get("figure5")  # grid takes seed/nodes_per_cluster only
        kwargs = exp.grid_kwargs({"nodes": 10, "total_time": 60.0, "seed": 3})
        assert kwargs == {"seed": 3}

    def test_grids_are_json_canonical(self):
        for exp in registry.all_experiments():
            for params in exp.build_grid():
                assert params == json.loads(json.dumps(params, sort_keys=True))

    def test_canonical_params_normalizes_tuples(self):
        assert canonical_params({"a": (1, 2)}) == {"a": [1, 2]}

    def test_canonical_params_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_params({"a": object()})

    def test_duplicate_name_with_different_functions_rejected(self):
        table1 = registry.get("table1")
        clash = dataclasses.replace(
            registry.get("fig8"), name="table1"
        )
        with pytest.raises(ValueError, match="registered twice"):
            registry.register(clash)
        assert registry.get("table1") is table1  # original untouched

    def test_reregistering_same_declaration_is_idempotent(self):
        table1 = registry.get("table1")
        again = dataclasses.replace(table1, title="reloaded")
        registry.register(again)
        assert registry.get("table1") is again
        registry.register(table1)  # restore

    def test_parallel_runs_the_passed_experiment_not_the_registered_one(self):
        """The pool must execute exp.point, never a by-name registry lookup."""
        disguised = dataclasses.replace(
            registry.get("fig6-fig7"),
            point=canonical_params,  # module-level, picklable, echoes params
            reduce=lambda grid, points: points,
        )
        overrides = {"delays_min": [5, 15], **TINY, "seed": 2}
        serial = run_experiment(disguised, overrides=overrides, jobs=1)
        para = run_experiment(disguised, overrides=overrides, jobs=2)
        # a by-name lookup would have run the registered fig6-fig7 point
        # (returning CLC counts) in the workers instead of echoing params
        assert serial.result == para.result == disguised.build_grid(overrides)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "fig9", 3) == derive_seed(42, "fig9", 3)

    def test_distinct_components_distinct_seeds(self):
        seeds = {derive_seed(42, "fig9", i) for i in range(100)}
        assert len(seeds) == 100

    def test_root_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_range(self):
        seed = derive_seed(0)
        assert 0 <= seed < 2**63


class TestCacheKeys:
    def test_stable_across_instances(self, tmp_path):
        a = ResultCache(tmp_path, code_hash="abc")
        b = ResultCache(tmp_path / "elsewhere", code_hash="abc")
        assert a.key("table1", {"x": 1}) == b.key("table1", {"x": 1})

    def test_param_order_irrelevant(self, tmp_path):
        cache = ResultCache(tmp_path, code_hash="abc")
        assert cache.key("t", {"a": 1, "b": 2}) == cache.key("t", {"b": 2, "a": 1})

    def test_params_change_key(self, tmp_path):
        cache = ResultCache(tmp_path, code_hash="abc")
        assert cache.key("t", {"a": 1}) != cache.key("t", {"a": 2})

    def test_experiment_name_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path, code_hash="abc")
        assert cache.key("t1", {"a": 1}) != cache.key("t2", {"a": 1})

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, code_hash="version-1")
        new = ResultCache(tmp_path, code_hash="version-2")
        old.put("t", {"a": 1}, {"answer": 42})
        assert old.get("t", {"a": 1}) == {"answer": 42}
        assert new.get("t", {"a": 1}) is None

    def test_code_version_hash_is_sha256_hex(self):
        digest = code_version_hash()
        assert len(digest) == 64
        assert digest == code_version_hash()  # cached + stable


class TestCacheStore:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path, code_hash="h")
        assert cache.get("t", {"a": 1}) is None
        cache.put("t", {"a": 1}, {"rows": [1, 2, 3]})
        assert cache.get("t", {"a": 1}) == {"rows": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.entry_count() == 1

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05truncated"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path, code_hash="h")
        cache.put("t", {"a": 1}, {"v": 1})
        path = cache.path(cache.key("t", {"a": 1}))
        path.write_bytes(garbage)
        assert cache.get("t", {"a": 1}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, code_hash="h")
        cache.put("t", {"a": 1}, 1)
        cache.put("t", {"a": 2}, 2)
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        """A sweep killed between mkstemp and os.replace leaves a *.tmp
        orphan that nothing ever reads; clear() must remove it too."""
        cache = ResultCache(tmp_path, code_hash="h")
        cache.put("t", {"a": 1}, 1)
        orphan = cache.path(cache.key("t", {"a": 1})).parent / "tmporphan.tmp"
        orphan.write_bytes(b"partial write")
        assert cache.clear() == 1  # orphans are not entries: uncounted
        assert not orphan.exists()
        assert not list(tmp_path.rglob("*.tmp"))

    def test_put_closes_fd_when_fdopen_fails(self, tmp_path, monkeypatch):
        """os.fdopen raising must not leak mkstemp's raw fd or its file."""
        import os

        cache = ResultCache(tmp_path, code_hash="h")
        closed = []
        real_close = os.close
        monkeypatch.setattr(os, "close", lambda fd: (closed.append(fd), real_close(fd)))
        monkeypatch.setattr(
            os, "fdopen", lambda fd, *a, **k: (_ for _ in ()).throw(MemoryError("no fds"))
        )
        with pytest.raises(MemoryError):
            cache.put("t", {"a": 1}, 1)
        assert closed, "the raw mkstemp fd was never closed"
        assert not list(tmp_path.rglob("*.tmp")), "the temp file was left behind"

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, code_hash="h", enabled=False)
        cache.put("t", {"a": 1}, 1)
        assert cache.get("t", {"a": 1}) is None
        assert cache.entry_count() == 0


class TestRunner:
    def test_serial_matches_parallel(self):
        overrides = {"delays_min": [5, 15, 30], **TINY, "seed": 2}
        serial = run_experiment("fig6-fig7", overrides=overrides, jobs=1)
        para = run_experiment("fig6-fig7", overrides=overrides, jobs=4)
        assert serial.result.xs == para.result.xs
        assert serial.result.series == para.result.series
        assert serial.points == para.points == 3

    def test_matches_legacy_serial_entry_point(self):
        report = run_experiment(
            "table1", overrides={"nodes": 10, "total_time": 7200.0, "seed": 1}
        )
        legacy = table1_message_counts(nodes=10, total_time=7200.0, seed=1)
        assert report.result.render() == legacy.render()

    def test_second_run_is_fully_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        overrides = {**TINY, "seed": 3}
        first = run_experiment("table1", overrides=overrides, cache=cache)
        assert first.executed == first.points == 1
        again = run_experiment("table1", overrides=overrides, cache=cache)
        assert again.executed == 0
        assert again.cache_hits == again.points == 1
        assert again.result.render() == first.result.render()

    def test_cached_run_never_recomputes(self, tmp_path):
        """A poisoned point function proves hits bypass execution entirely."""
        cache = ResultCache(tmp_path)
        overrides = {**TINY, "seed": 9}
        run_experiment("table1", overrides=overrides, cache=cache)

        def _exploding_point(params):
            raise AssertionError("point re-executed despite warm cache")

        poisoned = dataclasses.replace(
            registry.get("table1"), point=_exploding_point
        )
        report = run_experiment(poisoned, overrides=overrides, cache=cache)
        assert report.executed == 0 and report.cache_hits == 1

    def test_partial_cache_only_runs_missing_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = {**TINY, "seed": 2}
        run_experiment(
            "fig6-fig7", overrides={"delays_min": [5, 15], **base}, cache=cache
        )
        grown = run_experiment(
            "fig6-fig7", overrides={"delays_min": [5, 15, 30], **base}, cache=cache
        )
        assert grown.points == 3
        assert grown.cache_hits == 2 and grown.executed == 1

    def test_no_cache_executes_every_time(self):
        report = run_experiment("table1", overrides={**TINY, "seed": 4})
        assert report.cache_hits == 0 and report.executed == 1

    def test_seed_changes_escape_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment("table1", overrides={**TINY, "seed": 1}, cache=cache)
        other = run_experiment("table1", overrides={**TINY, "seed": 2}, cache=cache)
        assert other.executed == 1 and other.cache_hits == 0

    def test_empty_sequences_fall_back_to_default_grids(self):
        # pre-engine semantics: `delays_min or DEFAULT` treated [] like None
        assert len(registry.get("fig6-fig7").build_grid({"delays_min": []})) == 9
        assert len(registry.get("fig8").build_grid({"delays_min": []})) == 7
        assert len(registry.get("fig9").build_grid({"message_counts": []})) == 6
        assert len(registry.get("robustness").build_grid({"seeds": []})) == 10

    def test_empty_grid_is_an_error(self):
        empty = dataclasses.replace(
            registry.get("table1"), grid=lambda: []
        )
        with pytest.raises(ValueError, match="empty grid"):
            run_experiment(empty)

    def test_robustness_root_seed_derives_distinct_streams(self):
        grid = registry.get("robustness").build_grid({"seed": 7, **TINY})
        seeds = [p["seed"] for p in grid]
        assert len(seeds) == len(set(seeds)) == 10
        assert grid == registry.get("robustness").build_grid({"seed": 7, **TINY})
        default = registry.get("robustness").build_grid(TINY)
        assert [p["seed"] for p in default] == list(range(1, 11))


class TestSweepCli:
    def test_list_enumerates_all_experiments(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    def test_sweep_runs_and_reports(self, tmp_path, capsys):
        rc = main(
            ["sweep", "table1", "--scale", "tiny", "--jobs", "2",
             "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "[sweep] table1: 1 points" in out

    def test_sweep_json_output(self, tmp_path, capsys):
        rc = main(
            ["sweep", "fig8", "--scale", "tiny", "--no-cache", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig8"
        assert payload["series"]["c0 total"]
        assert payload["points"] == len(payload["xs"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "nope"])

    def test_name_required_without_list(self):
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_unscaled_experiment_ignores_scale_profile(self, capsys):
        rc = main(["sweep", "figure5", "--scale", "tiny", "--no-cache"])
        assert rc == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_scale_profiles_complete(self):
        assert set(SCALE_PROFILES) == {"full", "small", "tiny"}

    def test_explicit_seed_never_silently_dropped(self):
        from repro.cli import _sweep_overrides

        seedless = dataclasses.replace(
            registry.get("table1"), grid=lambda nodes=4: [{"nodes": nodes}]
        )
        with pytest.raises(SystemExit, match="does not accept --seed"):
            _sweep_overrides(seedless, "tiny", seed=9)

    def test_seed_flag_reaches_robustness(self, capsys):
        rc = main(
            ["sweep", "robustness", "--scale", "tiny", "--no-cache", "--seed", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "10 points" in out
        assert "seeds: [1, 2, 3" not in out  # derived, not the historical list
