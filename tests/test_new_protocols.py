"""Behavioral tests for the two new protocol families and the ablation
ranking.

The consistency/determinism invariants live in the oracle suites
(``test_consistency_oracle.py``, ``test_oracle_properties.py``); here we
pin the *distinguishing* behaviors: min-process rounds really synchronize
only the causally-entangled minimum set, the CIC predicates really place
forced checkpoints differently, the ghost-line fixpoint never rolls a
logged sender back, the stale-send guards recognize erased timelines, and
the leave-one-out importance ranking orders components correctly.
"""

import itertools

import pytest

import repro.network.message as msgmod
from repro.app.process import scripted_sender_factory
from repro.baselines.clc_cic import ghost_line_targets
from repro.experiments.ablations import (
    component_importance,
    render_importance_markdown,
)
from repro.experiments.common import ExperimentResult
from repro.network.message import Message, MessageKind, NodeId
from tests.conftest import make_federation


def fresh_federation(**kwargs):
    msgmod._msg_ids = itertools.count(1)
    return make_federation(**kwargs)


# ----------------------------------------------------------------------
# min-process: the round synchronizes only the entangled set
# ----------------------------------------------------------------------

class TestMinProcess:
    def test_participants_follow_communication(self):
        # traffic only 0 -> 1: cluster 2 stays out of every minimum set
        scripts = {
            NodeId(0, 1): [(5.0, NodeId(1, 1), 256), (9.0, NodeId(1, 1), 256)]
        }
        fed = fresh_federation(
            n_clusters=3, nodes=2, clc_period=None, total_time=100.0,
            protocol="min-process",
            app_factory=scripted_sender_factory(scripts),
        )
        fed.start()
        fed.sim.run(until=20.0)
        protocol = fed.protocol
        assert protocol.participants_for(0) == [0, 1]
        assert protocol.participants_for(1) == [0, 1]
        assert protocol.participants_for(2) == [2]

    def test_uninvolved_cluster_does_not_roll_back(self):
        scripts = {
            NodeId(0, 1): [(5.0, NodeId(1, 1), 256)]
        }
        fed = fresh_federation(
            n_clusters=3, nodes=2, clc_period=120.0, total_time=600.0,
            protocol="min-process",
            app_factory=scripted_sender_factory(scripts),
        )
        fed.start()
        fed.sim.run(until=300.0)
        fed.inject_failure(NodeId(0, 1))
        fed.run()
        rolled = {
            r["cluster"] for r in fed.protocol.tracer.find("rollback")
        }
        assert 0 in rolled
        assert 2 not in rolled, "cluster 2 never communicated; no domino"
        for cluster in fed.clusters:
            for node in cluster.nodes:
                assert node.up

    def test_rounds_record_participant_sizes(self):
        fed = fresh_federation(
            n_clusters=3, nodes=2, clc_period=60.0, total_time=400.0,
            protocol="min-process", chatty=True, seed=3,
        )
        fed.run()
        tally = fed.protocol.stats.tally("minproc/participants")
        assert tally.count > 0
        # with per-cluster timers firing independently, at least one round
        # must have been smaller than the whole federation
        assert tally.min < 3 or tally.mean < 3


# ----------------------------------------------------------------------
# clc-cic: ghost-line fixpoint + predicate placement
# ----------------------------------------------------------------------

class TestGhostLineTargets:
    def test_ghost_direction_propagates(self):
        # c0 rolls to ordinal 2; c1 delivered (at its ordinal 3) a message
        # c0 sent at ordinal 3 (erased) -> c1 must descend to <= 3
        checkpoints = [[1, 2, 3], [1, 2, 3, 4]]
        edges = [(0, 3, 1, 3)]
        targets = ghost_line_targets(checkpoints, edges, failed=0)
        assert targets[0] == 3  # last stored checkpoint of the faulty cluster
        assert targets[1] == 3  # descended below the erased delivery

    def test_in_transit_does_not_lower_sender(self):
        # c1 (faulty) rolls, erasing its *delivery* of c0's message; the
        # sender log replays it, so c0 must NOT roll back
        checkpoints = [[1, 2, 3], [1, 2]]
        edges = [(0, 2, 1, 2)]
        targets = ghost_line_targets(checkpoints, edges, failed=1)
        assert targets[1] == 2
        assert targets[0] is None

    def test_faulty_without_checkpoint_raises(self):
        with pytest.raises(ValueError):
            ghost_line_targets([[1], []], [], failed=1)


class TestCicPredicates:
    def run_predicate(self, predicate):
        """c0 checkpoints (lc 1->2) and then sends to c1, whose clock is
        still behind: the predicate decides whether c1 must checkpoint
        before delivering."""
        scripts = {
            NodeId(0, 1): [(5.0, NodeId(1, 1), 256), (30.0, NodeId(1, 1), 256)]
        }
        fed = fresh_federation(
            n_clusters=2, nodes=2, clc_period=None, total_time=200.0,
            protocol="clc-cic", protocol_options={"predicate": predicate},
            app_factory=scripted_sender_factory(scripts),
        )
        fed.start()
        fed.sim.schedule_at(20.0, fed.protocol.request_checkpoint, 0)
        fed.run()
        return fed

    def test_bcs_forces_checkpoints(self):
        fed = self.run_predicate("bcs")
        stats = fed.protocol.stats
        assert stats.counter("cic/forces_requested").value > 0
        assert fed.protocol.cluster_summary(1)["clc_forced"] > 0
        # the forced checkpoint adopted the sender's clock
        assert fed.protocol.states[1].lc >= fed.protocol.states[0].lc

    def test_aftersend_skips_the_same_force(self):
        fed = self.run_predicate("bcs-aftersend")
        stats = fed.protocol.stats
        assert stats.counter("cic/forced_skipped").value > 0
        assert stats.counter("cic/forces_requested").value == 0
        assert fed.protocol.cluster_summary(1)["clc_forced"] == 0
        # the clock was still adopted without a checkpoint
        assert fed.protocol.states[1].lc == fed.protocol.states[0].lc

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError, match="predicate"):
            fresh_federation(
                n_clusters=2, nodes=2, protocol="clc-cic",
                protocol_options={"predicate": "zpf"},
            )


# ----------------------------------------------------------------------
# stale-send (ghost window) guards on the erasure-blind baselines
# ----------------------------------------------------------------------

def ghost_probe(protocol_name):
    fed = fresh_federation(
        n_clusters=2, nodes=2, clc_period=120.0, total_time=100.0,
        protocol=protocol_name,
    )
    fed.start()
    fed.sim.run(until=10.0)
    return fed


@pytest.mark.parametrize("protocol_name", ["independent", "global-coordinated"])
def test_send_erased_recognizes_windows(protocol_name):
    fed = ghost_probe(protocol_name)
    protocol = fed.protocol
    msg = Message(
        src=NodeId(0, 1), dst=NodeId(1, 1), kind=MessageKind.APP, size=64
    )
    msg.send_time = 50.0
    assert not protocol.send_erased(msg)
    if protocol_name == "independent":
        protocol.ghost_windows[0].append((40.0, 60.0))
    else:
        protocol.ghost_windows.append((40.0, 60.0))
    assert protocol.send_erased(msg)
    for boundary in (40.0, 60.0):  # closed interval, both ends erased
        msg.send_time = boundary
        assert protocol.send_erased(msg)
    msg.send_time = 60.0001
    assert not protocol.send_erased(msg)


def test_rollback_opens_a_ghost_window():
    fed = fresh_federation(
        n_clusters=2, nodes=2, clc_period=120.0, total_time=600.0,
        protocol="independent", chatty=True, seed=2,
    )
    fed.start()
    fed.sim.run(until=300.0)
    fed.inject_failure(NodeId(0, 1))
    fed.run()
    assert any(fed.protocol.ghost_windows), "rollback recorded no window"
    for windows in fed.protocol.ghost_windows:
        for erased_from, erased_until in windows:
            assert erased_from <= erased_until


# ----------------------------------------------------------------------
# leave-one-out importance ranking
# ----------------------------------------------------------------------

def fake_ablation_result():
    return ExperimentResult(
        name="ablation-components",
        description="synthetic",
        x_label="configuration",
        xs=["full hc3i", "no ddv", "no logging", "no gc"],
        series={"lost_work": [100.0, 90.0, 400.0, 100.0]},
    )


class TestComponentImportance:
    def test_ranking_orders_by_delta(self):
        ranking = component_importance(fake_ablation_result())
        assert ranking["baseline_value"] == 100.0
        assert [e["component"] for e in ranking["components"]] == [
            "logging", "gc", "ddv"
        ]
        assert [e["rank"] for e in ranking["components"]] == [1, 2, 3]
        by_name = {e["component"]: e for e in ranking["components"]}
        assert by_name["logging"]["delta"] == 300.0
        assert not by_name["logging"]["harmful"]
        assert by_name["ddv"]["harmful"]  # removing it helped
        assert by_name["gc"]["delta"] == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError, match="unknown ablation metric"):
            component_importance(fake_ablation_result(), metric="latency")

    def test_markdown_report_shape(self):
        ranking = component_importance(fake_ablation_result())
        md = render_importance_markdown(ranking)
        assert "# HC3I component importance" in md
        assert "| 1 | logging |" in md
        assert "load-bearing (removal costs)" in md
        assert "harmful on this workload" in md
