"""Tests for the robustness, MTBF-sweep and scalability experiments."""

import pytest

from repro.experiments.failure_sweep import mtbf_sweep
from repro.experiments.robustness import multi_seed_robustness
from repro.experiments.scalability import federation_scaling

HOUR = 3600.0


class TestRobustness:
    @pytest.fixture(scope="class")
    def exp(self):
        return multi_seed_robustness(
            seeds=[1, 2, 3], nodes=10, total_time=2 * HOUR
        )

    def test_one_row_per_metric(self, exp):
        assert len(exp.rows) == 8
        names = [row[0] for row in exp.rows]
        assert "msgs 0->0" in names and "c1 forced" in names

    def test_stats_sane(self, exp):
        for name, mean, std, lo, hi in exp.rows:
            assert lo <= mean <= hi
            assert std >= 0

    def test_c1_never_unforced(self, exp):
        row = next(r for r in exp.rows if r[0] == "c1 unforced")
        assert row[4] == 0  # max over seeds

    def test_seeds_recorded_in_notes(self, exp):
        assert any("seeds" in n for n in exp.notes)


class TestMtbfSweep:
    @pytest.fixture(scope="class")
    def exp(self):
        return mtbf_sweep(
            mtbfs=[2 * HOUR, HOUR / 2],
            protocols=("hc3i", "global-coordinated"),
            nodes=4,
            total_time=4 * HOUR,
            seed=7,
        )

    def test_rows_per_protocol_and_mtbf(self, exp):
        assert len(exp.rows) == 4

    def test_goodput_bounded_above(self, exp):
        # goodput may legitimately go negative at extreme failure rates
        # (re-execution thrash), but can never exceed 1
        for row in exp.rows:
            assert row[4] <= 1.0

    def test_failures_increase_with_rate(self, exp):
        by_key = {(r[0], r[1]): r for r in exp.rows}
        assert by_key[("hc3i", "0.5h")][2] >= by_key[("hc3i", "2h")][2]

    def test_hc3i_beats_global_at_high_rate(self, exp):
        by_key = {(r[0], r[1]): r for r in exp.rows}
        assert (
            by_key[("hc3i", "0.5h")][4]
            >= by_key[("global-coordinated", "0.5h")][4]
        )


class TestScaling:
    def test_shapes_and_rates(self):
        exp = federation_scaling(
            shapes=[(2, 4), (3, 4)], total_time=600.0, seed=1
        )
        assert [row[0] for row in exp.rows] == ["2x4", "3x4"]
        for row in exp.rows:
            assert row[2] > 0      # events
            assert row[6] > 1000   # events/s
        # more clusters, more protocol traffic
        assert exp.rows[1][4] > 0
