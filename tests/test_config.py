"""Unit tests for the three configuration files and the loader."""

import json

import pytest

from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.loader import (
    ScenarioConfig,
    load_scenario,
    topology_from_dict,
    topology_to_dict,
)
from repro.config.timers import HOUR, MINUTE, TimersConfig
from repro.network.topology import two_cluster_topology


class TestClusterAppSpec:
    def test_valid(self):
        spec = ClusterAppSpec(mean_compute=10.0, send_probabilities=[0.5, 0.3])
        assert spec.probability_to(0) == 0.5
        assert spec.probability_to(1) == 0.3
        assert spec.probability_to(7) == 0.0

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            ClusterAppSpec(mean_compute=0.0)

    def test_probabilities_over_one_rejected(self):
        with pytest.raises(ValueError):
            ClusterAppSpec(mean_compute=1.0, send_probabilities=[0.8, 0.5])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            ClusterAppSpec(mean_compute=1.0, send_probabilities=[-0.1])

    def test_roundtrip(self):
        spec = ClusterAppSpec(mean_compute=5.0, send_probabilities=[0.2], message_size=99)
        assert ClusterAppSpec.from_dict(spec.to_dict()) == spec


class TestApplicationConfig:
    def test_expected_messages(self):
        app = ApplicationConfig(
            clusters=[ClusterAppSpec(mean_compute=100.0, send_probabilities=[0.5, 0.5])],
            total_time=1000.0,
        )
        # 10 rounds per node, 4 nodes, half to cluster 1
        assert app.expected_messages(0, 1, nodes=4) == pytest.approx(20.0)

    def test_needs_clusters(self):
        with pytest.raises(ValueError):
            ApplicationConfig(clusters=[], total_time=1.0)

    def test_needs_positive_time(self):
        with pytest.raises(ValueError):
            ApplicationConfig(
                clusters=[ClusterAppSpec(mean_compute=1.0)], total_time=0.0
            )

    def test_roundtrip(self):
        app = ApplicationConfig(
            clusters=[ClusterAppSpec(mean_compute=3.0, send_probabilities=[0.1, 0.2])],
            total_time=500.0,
        )
        assert ApplicationConfig.from_dict(app.to_dict()).total_time == 500.0


class TestTimersConfig:
    def test_defaults(self):
        t = TimersConfig()
        assert t.clc_period_for(0) is None
        assert t.gc_period is None

    def test_periods_normalized(self):
        t = TimersConfig(clc_periods=[60.0, "inf", None, float("inf")])
        assert t.clc_period_for(0) == 60.0
        assert t.clc_period_for(1) is None
        assert t.clc_period_for(2) is None
        assert t.clc_period_for(3) is None
        assert t.clc_period_for(99) is None  # out of range = infinite

    def test_string_number_accepted(self):
        assert TimersConfig(clc_periods=["30"]).clc_period_for(0) == 30.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            TimersConfig(clc_periods=[-5.0])

    def test_invalid_delays_rejected(self):
        with pytest.raises(ValueError):
            TimersConfig(failure_detection_delay=-1.0)
        with pytest.raises(ValueError):
            TimersConfig(node_state_size=0)

    def test_roundtrip(self):
        t = TimersConfig(clc_periods=[30 * MINUTE, None], gc_period=2 * HOUR)
        t2 = TimersConfig.from_dict(t.to_dict())
        assert t2.clc_period_for(0) == 30 * MINUTE
        assert t2.clc_period_for(1) is None
        assert t2.gc_period == 2 * HOUR

    def test_units(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0


class TestTopologySerialization:
    def test_roundtrip(self):
        topo = two_cluster_topology(nodes=7, mtbf=1234.0)
        again = topology_from_dict(topology_to_dict(topo))
        assert again.n_clusters == 2
        assert again.nodes_in(0) == 7
        assert again.mtbf == 1234.0
        assert again.link_between(0, 1).latency == topo.link_between(0, 1).latency

    def test_from_dict_defaults(self):
        topo = topology_from_dict({"clusters": [{"name": "a", "nodes": 2}]})
        assert topo.clusters[0].link.latency == pytest.approx(10e-6)


class TestScenario:
    def test_mismatched_cluster_counts_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(
                topology=two_cluster_topology(nodes=2),
                application=ApplicationConfig(
                    clusters=[ClusterAppSpec(mean_compute=1.0)], total_time=1.0
                ),
                timers=TimersConfig(),
            )

    def test_three_file_loading(self, tmp_path):
        topo_file = tmp_path / "topo.json"
        app_file = tmp_path / "app.json"
        timers_file = tmp_path / "timers.json"
        topo_file.write_text(json.dumps(topology_to_dict(two_cluster_topology(nodes=2))))
        app_file.write_text(json.dumps({
            "clusters": [
                {"mean_compute": 10.0, "send_probabilities": [0.9, 0.1]},
                {"mean_compute": 10.0, "send_probabilities": [0.1, 0.9]},
            ],
            "total_time": 100.0,
        }))
        timers_file.write_text(json.dumps({"clc_periods": [60, "inf"]}))
        scenario = load_scenario(topo_file, app_file, timers_file, seed=5)
        assert scenario.topology.n_clusters == 2
        assert scenario.application.total_time == 100.0
        assert scenario.timers.clc_period_for(1) is None
        assert scenario.seed == 5

    def test_single_file_loading(self, tmp_path):
        scenario = ScenarioConfig(
            topology=two_cluster_topology(nodes=2),
            application=ApplicationConfig(
                clusters=[
                    ClusterAppSpec(mean_compute=10.0),
                    ClusterAppSpec(mean_compute=10.0),
                ],
                total_time=100.0,
            ),
            timers=TimersConfig(clc_periods=[60.0, 60.0]),
            protocol="hc3i-transitive",
            seed=3,
        )
        path = tmp_path / "scenario.json"
        scenario.save(path)
        loaded = load_scenario(path, path, path)
        assert loaded.protocol == "hc3i-transitive"
        assert loaded.seed == 3
        assert loaded.topology.nodes_in(1) == 2

    def test_scenario_runs(self, tmp_path):
        """A loaded scenario can actually be simulated end to end."""
        from repro.cluster.federation import Federation

        scenario = ScenarioConfig(
            topology=two_cluster_topology(nodes=2),
            application=ApplicationConfig(
                clusters=[
                    ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.8, 0.2]),
                    ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.2, 0.8]),
                ],
                total_time=300.0,
            ),
            timers=TimersConfig(clc_periods=[100.0, 100.0]),
        )
        fed = Federation(
            scenario.topology, scenario.application, scenario.timers,
            protocol=scenario.protocol, seed=scenario.seed,
        )
        results = fed.run()
        assert results.duration == 300.0
        assert results.clc_counts(0)["total"] >= 1
