"""Stress integration: every feature enabled at once.

Eight clusters, chatty traffic, distributed garbage collection, transitive
DDV tracking, degree-2 replication, heartbeat detection, MTBF-driven
simultaneous faults -- the protocol must stay consistent and every cluster
must end the run healthy.

These are the suite's longest simulations, so the whole module is in the
slow lane (run ``-m "not slow"`` for the fast smoke pass).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.analysis.consistency import check_invariants, verify_consistency
from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import TimersConfig
from repro.network.topology import ClusterSpec, Topology
from repro.sim.trace import TraceLevel


def build_everything_on(seed: int, mtbf=500.0, n_clusters=8, nodes=3):
    topology = Topology(
        clusters=[ClusterSpec(f"c{i}", nodes) for i in range(n_clusters)],
        mtbf=mtbf,
    )
    p_inter = 0.15
    specs = []
    for c in range(n_clusters):
        probs = [p_inter / (n_clusters - 1)] * n_clusters
        probs[c] = 1.0 - p_inter
        specs.append(ClusterAppSpec(mean_compute=25.0, send_probabilities=probs))
    application = ApplicationConfig(clusters=specs, total_time=2500.0)
    timers = TimersConfig(
        clc_periods=[90.0] * n_clusters,
        gc_period=400.0,
        failure_detection_delay=0.5,
        checkpoint_restore_time=0.2,
        node_repair_time=1.0,
        node_state_size=50_000,
        detector="heartbeat",
        heartbeat_period=0.5,
        heartbeat_timeout=1.6,
    )
    return Federation(
        topology,
        application,
        timers,
        protocol="hc3i",
        protocol_options={
            "mode": "ddv",
            "gc_mode": "distributed",
            "replication_degree": 2,
            "incremental": True,
            "incremental_fraction": 0.25,
        },
        seed=seed,
        trace_level=TraceLevel.PROTOCOL,
        allow_simultaneous_faults=True,
    )


@pytest.mark.parametrize("seed", [101, 202])
def test_everything_on_survives(seed):
    fed = build_everything_on(seed)
    results = fed.run()

    # the run saw real action
    assert results.counter("failures/injected") >= 1
    assert sum(results.messages.values()) > 500
    assert results.counter("gc/clcs_removed") > 0

    # everyone healthy at the end
    for cluster in fed.clusters:
        for node in cluster.nodes:
            assert node.up
    for cs in fed.protocol.cluster_states:
        assert not cs.recovering

    # and the global state is consistent
    report = verify_consistency(fed)
    assert report.ok, str(report)
    assert check_invariants(fed) == []


def test_everything_on_deterministic():
    def run():
        fed = build_everything_on(303)
        results = fed.run()
        return (
            dict(results.messages),
            results.counter("rollback/total"),
            results.counter("gc/clcs_removed"),
            [cs.sn for cs in fed.protocol.cluster_states],
        )

    assert run() == run()


def test_everything_on_heartbeat_detects_all():
    fed = build_everything_on(404, mtbf=600.0)
    results = fed.run()
    injected = results.counter("failures/injected")
    # every injected fault was found by the heartbeat detector (the oracle
    # is disabled when the detector is active)
    assert fed.detector is not None
    assert fed.detector.suspects_raised == injected
