"""The docs suite must exist, stay internally linked, and match the CLI.

Runs the same checker the CI ``docs`` job uses
(``tools/check_markdown_links.py``), so a broken link fails tier-1
locally before it fails CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS = REPO_ROOT / "docs"


def test_docs_suite_exists():
    assert (DOCS / "architecture.md").is_file()
    assert (DOCS / "sweeps.md").is_file()


def test_readme_links_the_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/architecture.md" in readme
    assert "docs/sweeps.md" in readme


def test_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, "tools/check_markdown_links.py", "README.md", "docs"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout


def test_architecture_doc_mentions_every_experiment():
    from repro.experiments import registry

    text = (DOCS / "architecture.md").read_text()
    for name in registry.names():
        assert name in text, f"docs/architecture.md misses experiment {name!r}"


def test_sweeps_doc_covers_the_cli_surface():
    text = (DOCS / "sweeps.md").read_text()
    for flag in ("--scale", "--jobs", "--backend", "--hosts", "--set",
                 "--no-cache", "--cache-dir", "--seed", "--json", "--list"):
        assert flag in text, f"docs/sweeps.md misses flag {flag}"
    assert "hosts.toml" in text
    assert "REPRO_SSH_COMMAND" in text


def test_checker_catches_a_broken_link(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("[missing](./no-such-file.md)\n")
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_markdown_links.py"), str(bad)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "broken link" in proc.stderr
