"""Memory-pressure-triggered garbage collection (§3.5)."""

import pytest

from repro.config.timers import TimersConfig
from tests.conftest import chatty_application, default_timers, small_topology
from repro.cluster.federation import Federation


def pressure_fed(threshold, gc_period=None, seed=3):
    timers = default_timers(clc_period=60.0, gc_period=gc_period)
    timers.gc_memory_threshold = threshold
    return Federation(
        small_topology(),
        chatty_application(total_time=1200.0),
        timers,
        seed=seed,
    )


class TestPressureGc:
    def test_threshold_triggers_collections(self):
        # node_state_size=100kB, 3 nodes: each CLC adds ~100kB x2 per node;
        # a 500kB budget saturates after a few CLCs
        fed = pressure_fed(threshold=500_000)
        results = fed.run()
        assert results.counter("gc/pressure_triggers") >= 1
        assert fed.protocol.garbage_collector.rounds_completed >= 1
        # storage stayed bounded
        assert results.stored_clcs(0) <= 6

    def test_no_threshold_no_pressure_triggers(self):
        fed = pressure_fed(threshold=None)
        results = fed.run()
        assert results.counter("gc/pressure_triggers") == 0
        assert fed.protocol.garbage_collector.rounds_completed == 0

    def test_huge_threshold_never_triggers(self):
        fed = pressure_fed(threshold=10**12)
        results = fed.run()
        assert results.counter("gc/pressure_triggers") == 0

    def test_combines_with_periodic(self):
        fed = pressure_fed(threshold=500_000, gc_period=300.0)
        results = fed.run()
        # both mechanisms contribute rounds
        assert fed.protocol.garbage_collector.rounds_started >= 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TimersConfig(gc_memory_threshold=0)

    def test_config_roundtrip(self):
        t = TimersConfig(gc_memory_threshold=123456)
        assert TimersConfig.from_dict(t.to_dict()).gc_memory_threshold == 123456
