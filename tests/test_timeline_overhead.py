"""Tests for the timeline renderer and the §5.2 overhead experiment."""

import pytest

from repro.analysis.timeline import render_timeline
from repro.experiments.figure5 import figure5_scenario
from repro.experiments.overhead import protocol_overhead


class TestTimeline:
    @pytest.fixture(scope="class")
    def outcome(self):
        return figure5_scenario()

    def test_header_has_cluster_columns(self, outcome):
        text = render_timeline(outcome.federation)
        header = text.splitlines()[0]
        assert "C0" in header and "C1" in header and "C2" in header

    def test_clc_boxes_with_ddvs(self, outcome):
        text = render_timeline(outcome.federation)
        assert "[CLC 2* (1,2,0)]" in text   # m1's forced CLC in cluster 1
        assert "[CLC 3* (0,4,3)]" in text   # m4's forced CLC in cluster 2
        assert "[CLC 2* (2,0,3)]" in text   # m5's forced CLC in cluster 0

    def test_unforced_clc_not_starred(self, outcome):
        text = render_timeline(outcome.federation)
        assert "[CLC 3 (1,3,0)]" in text    # the manual CLC in cluster 1

    def test_messages_and_deliveries_shown(self, outcome):
        text = render_timeline(outcome.federation)
        assert "->C1" in text
        assert "(ack 2)" in text and "(ack 3)" in text
        assert "forces CLC" in text

    def test_cascade_shown(self, outcome):
        text = render_timeline(outcome.federation)
        assert "ROLLBACK -> sn 4" in text
        assert "ROLLBACK -> sn 3" in text
        assert "ROLLBACK -> sn 2" in text
        assert "alert(c1, sn 4)" in text

    def test_time_window_filtering(self, outcome):
        text = render_timeline(outcome.federation, t0=0.0, t1=30.0)
        assert "ROLLBACK" not in text
        assert "[CLC 2* (1,2,0)]" in text

    def test_rows_chronological(self, outcome):
        text = render_timeline(outcome.federation)
        times = [
            float(line.split()[0])
            for line in text.splitlines()[2:]
            if line.strip()
        ]
        assert times == sorted(times)


class TestOverheadExperiment:
    @pytest.fixture(scope="class")
    def exp(self):
        return protocol_overhead(
            timers_min=[None, 30, 10], nodes=10, total_time=7200.0, seed=3
        )

    def test_rows_per_timer(self, exp):
        assert [row[0] for row in exp.rows] == ["off", "30 min", "10 min"]

    def test_clc_counts_grow_with_tighter_timer(self, exp):
        clcs = [row[1] for row in exp.rows]
        assert clcs[0] <= clcs[1] <= clcs[2]

    def test_control_traffic_grows(self, exp):
        control = [row[3] for row in exp.rows]
        assert control[0] <= control[2]

    def test_piggyback_workload_bound(self, exp):
        piggy = [row[2] for row in exp.rows]
        assert max(piggy) - min(piggy) <= 0.3 * max(piggy) + 64

    def test_bytes_per_kind_counters(self):
        from tests.conftest import make_federation

        fed = make_federation(clc_period=100.0, total_time=400.0, chatty=True)
        results = fed.run()
        assert results.counter("net/bytes/kind/app") > 0
        assert results.counter("net/bytes/kind/replica") > 0
        assert results.counter("net/bytes/kind/clc_request") > 0
        # per-kind bytes partition the totals
        protocol_total = results.counter("net/bytes/protocol")
        per_kind = sum(
            v
            for name, v in results.stats.items()
            if isinstance(v, int)
            and name.startswith("net/bytes/kind/")
            and not name.endswith("/app")
            and not name.endswith("/replay")
        )
        assert per_kind == protocol_total
