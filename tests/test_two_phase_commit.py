"""Protocol tests: the intra-cluster two-phase commit (§3.1)."""

import pytest

from repro.core.clc import CheckpointCause
from repro.network.message import MessageKind, NodeId
from repro.app.process import scripted_sender_factory
from tests.conftest import make_federation


def run_initial(fed):
    """Run long enough for the initial CLCs to commit."""
    fed.start()
    fed.sim.run(until=1.0)
    return fed


class TestInitialCheckpoint:
    def test_every_cluster_commits_initial_clc(self):
        fed = run_initial(make_federation())
        for cs in fed.protocol.cluster_states:
            assert cs.sn == 1
            assert len(cs.store) == 1
            assert cs.store.last().cause is CheckpointCause.INITIAL

    def test_initial_ddv_own_entry_only(self):
        fed = run_initial(make_federation(n_clusters=3))
        for c, cs in enumerate(fed.protocol.cluster_states):
            expected = [0, 0, 0]
            expected[c] = 1
            assert list(cs.ddv) == expected

    def test_single_node_cluster_commits_alone(self):
        fed = run_initial(make_federation(nodes=1))
        assert fed.protocol.cluster_states[0].sn == 1


class TestTimerCheckpoints:
    def test_periodic_unforced_clcs(self):
        fed = make_federation(clc_period=100.0, total_time=1000.0)
        results = fed.run()
        counts = results.clc_counts(0)
        # ~1000/100 = 10 timer CLCs plus the initial one
        assert counts["initial"] == 1
        assert 8 <= counts["unforced"] <= 10
        assert counts["forced"] == 0

    def test_infinite_timer_no_unforced(self):
        fed = make_federation(clc_period=None, total_time=1000.0)
        results = fed.run()
        assert results.clc_counts(0)["unforced"] == 0
        assert results.clc_counts(0)["total"] == 1  # just the initial

    def test_sn_increments_per_commit(self):
        fed = make_federation(clc_period=100.0, total_time=500.0)
        fed.run()
        cs = fed.protocol.cluster_states[0]
        assert cs.sn == len(cs.store)
        assert cs.store.sns() == list(range(1, cs.sn + 1))


class TestTwoPhaseTraffic:
    def test_request_ack_commit_counts(self):
        """N-1 requests, N-1 acks, N-1 commits, N replicas per round."""
        fed = make_federation(
            n_clusters=1, nodes=4, clc_period=None, total_time=50.0
        )
        results = fed.run()  # only the initial CLC happens
        assert results.counter("net/protocol/clc_request") == 3
        assert results.counter("net/protocol/clc_ack") == 3
        assert results.counter("net/protocol/clc_commit") == 3
        assert results.counter("net/protocol/replica") == 4

    def test_replica_count_scales_with_degree(self):
        fed = make_federation(
            n_clusters=1,
            nodes=4,
            clc_period=None,
            total_time=50.0,
            protocol_options={"replication_degree": 2},
        )
        results = fed.run()
        assert results.counter("net/protocol/replica") == 8

    def test_degree_zero_no_replicas(self):
        fed = make_federation(
            n_clusters=1,
            nodes=4,
            clc_period=None,
            total_time=50.0,
            protocol_options={"replication_degree": 0},
        )
        results = fed.run()
        assert results.counter("net/protocol/replica") == 0


class TestFreezing:
    def test_app_sends_frozen_during_round(self):
        """A message handed to the protocol mid-2PC leaves after commit."""
        # node 1 sends intra-cluster at t=10.000001; the CLC round started
        # at t=10 and takes ~2 SAN hops to commit, so the send is queued.
        fed = make_federation(
            nodes=3,
            clc_period=None,
            total_time=30.0,
            app_factory=scripted_sender_factory({
                NodeId(0, 1): [(10.000001, NodeId(0, 2), 100)],
            }),
        )
        fed.start()
        fed.sim.schedule_at(10.0, fed.protocol.request_checkpoint, 0)
        fed.sim.run(until=30.0)
        # the message did go out eventually
        assert fed.fabric.app_message_count(0, 0) == 1
        # and its send time is after the commit of CLC 2
        commit = fed.tracer.first("clc_commit", cluster=0, sn=2)
        send = next(iter(
            m for m in fed.tracer.find("send")
        ), None) if fed.tracer.level >= 2 else None
        assert commit is not None

    def test_queued_out_flushed_in_order(self):
        fed = make_federation(nodes=2, clc_period=None, total_time=30.0)
        fed.start()
        fed.sim.run(until=5.0)
        agent = fed.node(NodeId(0, 1)).agent
        agent.in_round = True  # simulate freeze window
        agent.app_send(NodeId(0, 0), 10, {"n": 1})
        agent.app_send(NodeId(0, 0), 10, {"n": 2})
        assert fed.fabric.app_message_count(0, 0) == 0
        agent.apply_commit()
        fed.sim.run(until=6.0)
        assert fed.fabric.app_message_count(0, 0) == 2

    def test_inter_cluster_arrival_deferred_during_round(self):
        fed = make_federation(nodes=2, clc_period=None, total_time=30.0)
        fed.start()
        fed.sim.run(until=5.0)
        agent = fed.node(NodeId(1, 0)).agent
        agent.in_round = True
        # hand-craft an inter-cluster arrival
        from repro.core.hc3i import Piggyback
        from repro.network.message import Message

        msg = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP,
            size=10, piggyback=Piggyback(sn=1, epoch=0),
        )
        agent.on_receive(msg)
        assert agent.deferred_in == [msg]
        cs = fed.protocol.cluster_states[1]
        assert msg.msg_id not in cs.delivered_ids
        agent.apply_commit()
        fed.sim.run(until=6.0)
        assert msg.msg_id in cs.delivered_ids


class TestManualCheckpoint:
    def test_request_checkpoint_commits_manual_clc(self):
        fed = make_federation(clc_period=None, total_time=100.0)
        fed.start()
        fed.sim.schedule_at(10.0, fed.protocol.request_checkpoint, 0)
        fed.sim.run(until=100.0)
        cs = fed.protocol.cluster_states[0]
        assert cs.sn == 2
        assert cs.store.last().cause is CheckpointCause.MANUAL

    def test_concurrent_requests_merge_into_rounds(self):
        fed = make_federation(clc_period=None, total_time=100.0)
        fed.start()
        # three instantaneous requests: the first starts a round, the other
        # two merge into the single follow-up round
        for _ in range(3):
            fed.sim.schedule_at(10.0, fed.protocol.request_checkpoint, 0)
        fed.sim.run(until=100.0)
        assert fed.protocol.cluster_states[0].sn <= 3

    def test_timer_resets_on_forced_commit(self):
        """§5.2: the unforced-CLC timer restarts when any CLC commits."""
        fed = make_federation(clc_period=100.0, total_time=260.0)
        fed.start()
        fed.sim.schedule_at(90.0, fed.protocol.request_checkpoint, 0)
        fed.sim.run(until=260.0)
        commits = [r["sn"] for r in fed.tracer.find("clc_commit", cluster=0)]
        times = [r.time for r in fed.tracer.find("clc_commit", cluster=0)]
        # initial (~0), manual (~90), then timer at ~190 -- NOT at 100
        assert len(times) == 3
        assert times[2] == pytest.approx(190.0, abs=1.0)
