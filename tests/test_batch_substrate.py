"""Table-driven tests for the shared batch-substrate parsing helpers.

The satellite audit of ``_parse_sacct``/``_parse_squeue``/
``_expand_indices`` confirmed two silent-drop bugs, pinned here:

* SLURM's *stepped* array ranges (``--array=0-15:4`` prints as
  ``[0-15:4]``) made ``expand_indices`` return ``[]``, so every task in
  the range was never marked and burned ``unknown_grace`` polls before
  being declared vanished.
* squeue states were normalized differently from sacct states (no ``+``
  truncation-marker strip), so the same task could oscillate between
  "known" and "unknown" depending on which command reported it first.
"""

from __future__ import annotations

import pytest

from repro.experiments.backends.batch import expand_indices, normalize_state
from repro.experiments.backends.slurm import _parse_sacct, _parse_squeue


class TestExpandIndices:
    @pytest.mark.parametrize(
        "token, expected",
        [
            # the classic shapes
            ("3", [3]),
            ("[0-4]", [0, 1, 2, 3, 4]),
            ("0,2-4", [0, 2, 3, 4]),
            (" 7 ", [7]),
            ("0-0", [0]),
            # stepped ranges: sbatch --array=0-15:4 prints as [0-15:4]
            ("[0-15:4]", [0, 4, 8, 12]),
            ("0-8:2", [0, 2, 4, 6, 8]),
            # %limit throttle suffixes, whole-spec and per-chunk
            ("[0-8%2]", list(range(9))),
            ("[0-31%8]", list(range(32))),
            ("[0-8:2%3]", [0, 2, 4, 6, 8]),
            ("0-15:4%2", [0, 4, 8, 12]),
            ("5%1", [5]),  # single index with a throttle suffix
            ("[5%1]", [5]),
            # mixed comma lists with steps and suffixes
            ("1,4-8:2", [1, 4, 6, 8]),
            ("0,4-12:4", [0, 4, 8, 12]),
            ("0,2-4,9%2", [0, 2, 3, 4, 9]),
        ],
    )
    def test_expand(self, token, expected):
        assert expand_indices(token) == expected

    @pytest.mark.parametrize(
        "token",
        [
            # pre-fix, all of these silently expanded to [] (or dropped the
            # bad chunk), so the affected tasks were never marked and burned
            # unknown_grace polls before being declared vanished
            "",
            "   ",
            "[]",
            "garbage",
            "0-8:0",  # zero step would loop forever in SLURM too
            "0-8:x",
            "1,bad,3",  # one bad chunk poisons the token: all-or-nothing
            "5-3",  # descending range: no real scheduler prints this
            "[%2]",
            "5%0",  # throttle must be >= 1
            "-1",
            "1-",
            "1-2-3",
            "N/A",
        ],
    )
    def test_unrecognized_tokens_raise_loudly(self, token):
        with pytest.raises(ValueError, match="array-index token"):
            expand_indices(token)


class TestNormalizeState:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("COMPLETED", "COMPLETED"),
            ("CANCELLED by 0", "CANCELLED"),  # sacct actor suffix
            ("CANCELLED by user-1234", "CANCELLED"),
            ("COMPLETED+", "COMPLETED"),  # truncation marker
            ("running", "RUNNING"),
            ("OUT_OF_MEMORY", "OUT_OF_MEMORY"),
            ("  PENDING  ", "PENDING"),
            ("", ""),  # whitespace-only input must not raise
            ("   ", ""),
            ("+", ""),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_state(raw) == expected


class TestSacctEdges:
    def test_stepped_bracket_range_is_expanded(self):
        """Pre-fix, the stepped token expanded to [] and the tasks were
        silently unmarked -- each burned unknown_grace polls."""
        out = "123_[0-4:2]|FAILED\n123_1|COMPLETED\n"
        assert _parse_sacct(out, "123") == {
            0: "FAILED",
            1: "COMPLETED",
            2: "FAILED",
            4: "FAILED",
        }

    def test_truncation_marker_and_actor_suffix_normalize(self):
        out = "123_0|CANCELLED by 42\n123_1|COMPLETED+\n"
        assert _parse_sacct(out, "123") == {0: "CANCELLED", 1: "COMPLETED"}

    def test_whitespace_state_is_skipped_not_crashed(self):
        out = "123_0|COMPLETED\n123_1|\n123_2|   \n"
        assert _parse_sacct(out, "123") == {0: "COMPLETED"}

    def test_foreign_jobs_and_steps_still_filtered(self):
        out = "124_0|FAILED\n123_0.batch|COMPLETED\n123_0|RUNNING\n"
        assert _parse_sacct(out, "123") == {0: "RUNNING"}


class TestSqueueEdges:
    def test_normalizes_like_sacct(self):
        """squeue output now goes through the same normalize_state as
        sacct, so a '+'-suffixed or multi-word state cannot make the same
        task flip between known and unknown across commands."""
        out = "0|COMPLETING+\n1|CANCELLED by 0\n"
        assert _parse_squeue(out) == {0: "COMPLETING", 1: "CANCELLED"}

    def test_stepped_range_is_expanded(self):
        out = "0-8:4|PENDING\n"
        assert _parse_squeue(out) == {0: "PENDING", 4: "PENDING", 8: "PENDING"}

    def test_malformed_tokens_are_skipped(self):
        out = "N/A|PENDING\n2|RUNNING\n"
        assert _parse_squeue(out) == {2: "RUNNING"}
