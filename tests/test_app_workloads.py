"""Tests for application processes and calibrated workloads."""

import pytest

from repro.app.process import Mailbox, scripted_sender_factory
from repro.app.workloads import (
    fig9_workload,
    pipeline_workload,
    table1_workload,
    table2_workload,
    table3_workload,
)
from repro.network.message import NodeId
from tests.conftest import make_federation


class TestMailbox:
    def test_records_messages(self):
        from repro.network.message import Message, MessageKind

        box = Mailbox()
        m = Message(NodeId(0, 0), NodeId(0, 1), MessageKind.APP, 1)
        box(m)
        assert len(box) == 1
        assert box.ids() == [m.msg_id]
        assert box.senders() == [NodeId(0, 0)]


class TestScriptedSender:
    def test_sends_at_scheduled_times(self):
        fed = make_federation(
            nodes=2, clc_period=None, total_time=100.0,
            app_factory=scripted_sender_factory({
                NodeId(0, 0): [(10.0, NodeId(0, 1), 50), (20.0, NodeId(0, 1), 50)],
            }),
        )
        fed.start()
        box = Mailbox()
        fed.node(NodeId(0, 1)).app_sink = box
        fed.sim.run(until=100.0)
        assert len(box) == 2

    def test_unscripted_nodes_idle(self):
        fed = make_federation(
            nodes=2, clc_period=None, total_time=100.0,
            app_factory=scripted_sender_factory({}),
        )
        results = fed.run()
        assert sum(results.messages.values()) == 0

    def test_restart_skips_past_sends(self):
        """Post-rollback restarts must not re-fire past instructions."""
        fed = make_federation(
            nodes=2, clc_period=None, total_time=200.0,
            app_factory=scripted_sender_factory({
                NodeId(0, 0): [(10.0, NodeId(0, 1), 50)],
            }),
        )
        fed.start()
        fed.sim.run(until=50.0)
        assert fed.fabric.app_message_count(0, 0) == 1
        fed.inject_failure(NodeId(0, 1))
        fed.run()
        # the send at t=10 was not replayed by the restarted script
        assert fed.fabric.app_message_count(0, 0) == 1


class TestComputeCommunicateLoop:
    def test_respects_probabilities(self):
        fed = make_federation(
            n_clusters=2, nodes=4, clc_period=None, total_time=4000.0,
            chatty=True, seed=9,
        )
        results = fed.run()
        intra = results.app_messages(0, 0)
        inter = results.app_messages(0, 1)
        # chatty_application: p_intra = 0.8, p_inter = 0.2
        assert intra > 2 * inter

    def test_stops_at_total_time(self):
        fed = make_federation(chatty=True, clc_period=None, total_time=300.0)
        fed.run()
        for cluster in fed.clusters:
            for node in cluster.nodes:
                assert node.app_process is not None
                assert not node.app_process.alive  # finished cleanly

    def test_never_messages_itself(self):
        fed = make_federation(
            n_clusters=1, nodes=2, clc_period=None, total_time=2000.0,
            chatty=True, seed=13,
        )
        fed.start()
        seen = []
        for node in fed.clusters[0].nodes:
            node.app_sink = lambda m, nid=node.id: seen.append((m.src, nid))
        fed.sim.run(until=2000.0)
        for src, dst in seen:
            assert src != dst


class TestWorkloadCalibration:
    def test_table1_expected_counts_full_scale(self):
        topology, application, timers = table1_workload()
        nodes = topology.nodes_in(0)
        assert application.expected_messages(0, 0, nodes) == pytest.approx(2920, rel=0.01)
        assert application.expected_messages(0, 1, nodes) == pytest.approx(145, rel=0.01)
        assert application.expected_messages(1, 1, nodes) == pytest.approx(2497, rel=0.01)
        assert application.expected_messages(1, 0, nodes) == pytest.approx(11, rel=0.01)

    def test_table1_scales_expectations(self):
        topology, application, timers = table1_workload(nodes=10, total_time=3600.0)
        # 10/100 nodes x 1/10 duration = 1/100 of the counts
        assert application.expected_messages(0, 0, 10) == pytest.approx(29.2, rel=0.01)

    def test_fig9_sets_reverse_flow(self):
        topology, application, timers = fig9_workload(messages_1_to_0=110)
        assert application.expected_messages(1, 0, 100) == pytest.approx(110, rel=0.01)
        assert timers.clc_period_for(0) == 1800.0
        assert timers.clc_period_for(1) == 1800.0

    def test_table2_defaults(self):
        topology, application, timers = table2_workload()
        assert timers.gc_period == 7200.0
        assert application.expected_messages(1, 0, 100) == pytest.approx(103, rel=0.01)

    def test_table3_three_clusters(self):
        topology, application, timers = table3_workload()
        assert topology.n_clusters == 3
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    assert application.expected_messages(src, dst, 100) == pytest.approx(
                        100, rel=0.01
                    )

    def test_fig6_timer_configuration(self):
        topology, application, timers = table1_workload(
            clc_period_0=600.0, clc_period_1=None
        )
        assert timers.clc_period_for(0) == 600.0
        assert timers.clc_period_for(1) is None

    def test_pipeline_forward_only(self):
        topology, application, timers = pipeline_workload(n_stages=3)
        assert application.clusters[0].probability_to(1) > 0
        assert application.clusters[0].probability_to(2) == 0
        assert application.clusters[2].probability_to(0) == 0
        assert application.clusters[2].probability_to(1) == 0

    def test_pipeline_skip_links(self):
        topology, application, timers = pipeline_workload(
            n_stages=4, skip_probability=0.02
        )
        assert application.clusters[0].probability_to(2) == pytest.approx(0.02)
        assert application.clusters[1].probability_to(3) == pytest.approx(0.02)
        assert application.clusters[2].probability_to(4 - 1) > 0  # forward still there

    def test_pipeline_needs_two_stages(self):
        with pytest.raises(ValueError):
            pipeline_workload(n_stages=1)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            table1_workload(nodes=0)
