"""The paper's Figure 4 argument, executed.

§3.2: "CLC2 is useful: in the event of a failure, a rollback to CLC1/CLC2
will be consistent (m1 would be sent and received again).  On the other
hand, forcing CLC3 is useless: cluster 1 has not stored any CLC between
its two message sendings.  In the event of a failure it will have to
rollback to CLC1 which will force cluster 2 to rollback to CLC2."

Scenario: cluster 0 sends m1 and m2 with no CLC in between.  HC3I forces a
checkpoint for m1 only; the strawman forces one for each.  We then crash
cluster 0 and verify the strawman's extra checkpoint (CLC3) was indeed
useless: cluster 1 rolls back *through* it to the m1 boundary either way.
"""

from repro.app.process import scripted_sender_factory
from repro.network.message import NodeId
from tests.conftest import make_federation


def run_fig4(protocol: str):
    fed = make_federation(
        n_clusters=2,
        nodes=2,
        clc_period=None,
        total_time=300.0,
        protocol=protocol,
        app_factory=scripted_sender_factory({
            NodeId(0, 0): [
                (10.0, NodeId(1, 0), 100),   # m1
                (30.0, NodeId(1, 0), 100),   # m2 -- no cluster-0 CLC between
            ],
        }),
    )
    fed.start()
    fed.sim.run(until=60.0)
    return fed


class TestFigure4:
    def test_hc3i_forces_only_for_m1(self):
        fed = run_fig4("hc3i")
        counts = fed.results().clc_counts(1)
        assert counts["forced"] == 1  # CLC2 (useful); no CLC3

    def test_strawman_forces_both(self):
        fed = run_fig4("cic-always")
        counts = fed.results().clc_counts(1)
        assert counts["forced"] == 2  # CLC2 and the useless CLC3

    def test_clc3_is_useless_on_rollback(self):
        """After cluster 0's failure, the strawman's CLC3 does not save
        cluster 1 anything: both protocols land on the m1 boundary."""
        landing = {}
        for protocol in ("hc3i", "cic-always"):
            fed = run_fig4(protocol)
            # cluster 0 rolls back to its only CLC (the initial, SN 1):
            # both m1 and m2 were sent in epoch 1, so both are erased.
            fed.inject_failure(NodeId(0, 1))
            fed.sim.run(until=300.0)
            rec = fed.tracer.first("rollback", cluster=1)
            assert rec is not None
            landing[protocol] = rec["to_sn"]
            # the boundary CLC taken for m1 is SN 2 in both protocols
            assert landing[protocol] == 2
        assert landing["hc3i"] == landing["cic-always"]

    def test_m2_would_be_useful_with_intermediate_clc(self):
        """Counterpoint (the paper's 'CLC3 would have been useful only
        if...'): with a cluster-0 CLC between the sends, HC3I forces for
        m2 as well, and that checkpoint now has value."""
        fed = make_federation(
            n_clusters=2,
            nodes=2,
            clc_period=None,
            total_time=300.0,
            app_factory=scripted_sender_factory({
                NodeId(0, 0): [
                    (10.0, NodeId(1, 0), 100),
                    (30.0, NodeId(1, 0), 100),
                ],
            }),
        )
        fed.start()
        fed.sim.schedule_at(20.0, fed.protocol.request_checkpoint, 0)
        fed.sim.run(until=60.0)
        assert fed.results().clc_counts(1)["forced"] == 2
        # cluster 0 now rolls back to SN 2 (its manual CLC): only m2 is
        # erased, and cluster 1 keeps m1 by landing on its second forced
        # CLC (SN 3) instead of unwinding to the m1 boundary.
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=300.0)
        rec = fed.tracer.first("rollback", cluster=1)
        assert rec is not None and rec["to_sn"] == 3
