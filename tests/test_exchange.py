"""Tests for the request/response exchange workload (§2.1)."""

from repro.app.process import exchange_factory
from repro.analysis.consistency import check_invariants, verify_consistency
from repro.network.message import NodeId
from tests.conftest import make_federation


def exchange_fed(clc_period=120.0, total_time=2000.0, seed=5, **kw):
    return make_federation(
        n_clusters=2,
        nodes=3,
        clc_period=clc_period,
        total_time=total_time,
        app_factory=exchange_factory(mean_compute=60.0),
        seed=seed,
        **kw,
    )


class TestExchangePattern:
    def test_every_request_gets_a_reply(self):
        fed = exchange_fed()
        results = fed.run()
        requests = results.app_messages(0, 1)
        replies = results.app_messages(1, 0)
        assert requests > 5
        # every delivered request produced one reply (allow in-flight tail)
        assert abs(replies - requests) <= 3

    def test_bidirectional_traffic_forces_both_sides(self):
        """The §5.3 regime: exchanges make SNs grow on both sides."""
        fed = exchange_fed()
        results = fed.run()
        assert results.clc_counts(0)["forced"] >= 1
        assert results.clc_counts(1)["forced"] >= 1

    def test_exchange_forces_more_than_oneway(self):
        """Replies re-arm the force on the requester side."""
        fed_ex = exchange_fed(seed=8)
        forced_exchange = sum(
            fed_ex.run().clc_counts(c)["forced"] for c in range(2)
        )
        fed_oneway = make_federation(
            n_clusters=2, nodes=3, clc_period=120.0, total_time=2000.0,
            app_factory=exchange_factory(mean_compute=60.0, request_probability=0.0),
            seed=8,
        )
        forced_oneway = sum(
            fed_oneway.run().clc_counts(c)["forced"] for c in range(2)
        )
        assert forced_exchange > forced_oneway == 0

    def test_responder_cluster_otherwise_idle(self):
        fed = exchange_fed()
        results = fed.run()
        # responders never message among themselves
        assert results.app_messages(1, 1) == 0

    def test_consistent_after_failure(self):
        fed = exchange_fed(total_time=3000.0, seed=6)
        fed.start()
        fed.sim.run(until=1200.0)
        fed.inject_failure(NodeId(1, 1))
        fed.run()
        report = verify_consistency(fed)
        assert report.ok, str(report)
        assert check_invariants(fed) == []

    def test_failed_responder_does_not_reply(self):
        fed = exchange_fed(total_time=3000.0, seed=7)
        fed.start()
        fed.sim.run(until=1000.0)
        replies_before = fed.fabric.app_message_count(1, 0)
        for node in fed.clusters[1].nodes:
            node.fail()  # silence the whole responder cluster
        fed.sim.run(until=1500.0)
        replies_after = fed.fabric.app_message_count(1, 0)
        assert replies_after == replies_before
