"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Simulator, SimulationError


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_events_run_in_time_order(self, sim):
        seen = []
        for t in (5.0, 1.0, 3.0):
            sim.schedule(t, seen.append, t)
        sim.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_ties_broken_by_insertion_order(self, sim):
        seen = []
        for tag in "abc":
            sim.schedule(1.0, seen.append, tag)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_zero_delay_allowed(self, sim):
        seen = []
        sim.schedule(0.0, seen.append, 1)
        sim.run()
        assert seen == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_callback_args_passed(self, sim):
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]

    def test_callback_can_schedule_more(self, sim):
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        ev = sim.schedule(1.0, seen.append, 1)
        sim.cancel(ev)
        sim.run()
        assert seen == []

    def test_cancel_twice_is_noop(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        sim.run()

    def test_cancel_one_of_many(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        ev = sim.schedule(2.0, seen.append, "b")
        sim.schedule(3.0, seen.append, "c")
        sim.cancel(ev)
        sim.run()
        assert seen == ["a", "c"]

    def test_pending_excludes_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.cancel(ev)
        assert sim.pending == 1


class TestRun:
    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=4.0)
        assert end == 4.0
        assert sim.now == 4.0
        assert sim.pending == 1

    def test_run_until_includes_events_at_horizon(self, sim):
        seen = []
        sim.schedule(4.0, seen.append, 1)
        sim.run(until=4.0)
        assert seen == [1]

    def test_run_resumable(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        sim.run(until=2.0)
        assert seen == ["a"]
        sim.run(until=10.0)
        assert seen == ["a", "b"]

    def test_run_empty_queue_returns_now(self, sim):
        assert sim.run() == 0.0

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_stop_interrupts_run(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, lambda: sim.stop())
        sim.schedule(3.0, seen.append, "b")
        sim.run()
        assert seen == ["a"]
        assert sim.pending == 1

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_returns_false_on_empty(self, sim):
        assert sim.step() is False

    def test_step_processes_single_event(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        assert sim.step() is True
        assert seen == [1]
        assert sim.now == 1.0

    def test_processed_counter(self, sim):
        for t in range(5):
            sim.schedule(float(t + 1), lambda: None)
        sim.run()
        assert sim.processed == 5

    def test_peek_returns_next_time(self, sim):
        sim.schedule(3.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.peek() == 1.0

    def test_peek_skips_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        assert sim.peek() == 2.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek() is None


class TestDeterminism:
    def test_same_schedule_same_order(self):
        def run_once():
            sim = Simulator()
            seen = []
            for i in range(100):
                sim.schedule((i * 7) % 13 * 0.5, seen.append, i)
            sim.run()
            return seen

        assert run_once() == run_once()

    def test_many_events_heap_integrity(self, sim):
        seen = []
        for i in range(1000):
            sim.schedule(float((i * 37) % 101), seen.append, i)
        sim.run()
        assert len(seen) == 1000
        # time order was respected
        times = [(i * 37) % 101 for i in seen]
        assert times == sorted(times)
