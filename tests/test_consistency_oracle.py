"""The protocol-agnostic consistency oracle, applied to every registry
protocol.

Two layers:

* a deterministic failure matrix -- every protocol family (all registered
  names, both clc-cic predicates) survives two mid-run node crashes on a
  chatty federation with zero orphan/duplicate/lost violations;
* non-vacuity -- the oracle actually *catches* each violation class when
  one is seeded into its trace, so a green matrix means something.
"""

import itertools

import pytest

import repro.network.message as msgmod
from repro.core.protocol import protocol_names
from repro.network.message import NodeId
from tests.conftest import make_federation
from tests.oracles.consistency import (
    DeliveryEvent,
    SendEvent,
    assert_consistent,
    attach_oracle,
)

#: every registered protocol, with clc-cic exercised under both predicates
PROTOCOL_CASES = [
    ("hc3i", None),
    ("hc3i-transitive", None),
    ("cic-always", None),
    ("global-coordinated", None),
    ("independent", None),
    ("pessimistic-log", None),
    ("min-process", None),
    ("clc-cic", {"predicate": "bcs"}),
    ("clc-cic", {"predicate": "bcs-aftersend"}),
]

CASE_IDS = [
    name if not opts else f"{name}-{opts['predicate']}"
    for name, opts in PROTOCOL_CASES
]


def test_case_list_covers_registry():
    """A newly registered protocol must be added to the oracle matrix."""
    assert {name for name, _ in PROTOCOL_CASES} == set(protocol_names())


def run_with_failures(protocol, options, seed, fail_specs, total_time=1000.0):
    msgmod._msg_ids = itertools.count(1)
    fed = make_federation(
        n_clusters=3,
        nodes=3,
        total_time=total_time,
        clc_period=120.0,
        protocol=protocol,
        protocol_options=options,
        seed=seed,
        chatty=True,
    )
    oracle = attach_oracle(fed)
    fed.start()
    for t, victim in fail_specs:
        fed.sim.run(until=t)
        fed.inject_failure(victim)
    fed.run()
    return fed, oracle


@pytest.mark.parametrize(("protocol", "options"), PROTOCOL_CASES, ids=CASE_IDS)
@pytest.mark.parametrize("seed", [1, 2])
def test_every_protocol_consistent_after_crashes(protocol, options, seed):
    specs = [(301.0 + seed, NodeId(0, 1)), (702.0 + seed, NodeId(1, 2))]
    fed, oracle = run_with_failures(protocol, options, seed, specs)
    report = assert_consistent(fed, oracle)
    assert report.messages > 0, "vacuous run: no inter-cluster traffic seen"
    assert report.delivered > 0


@pytest.mark.parametrize(("protocol", "options"), PROTOCOL_CASES, ids=CASE_IDS)
def test_every_protocol_consistent_without_failures(protocol, options):
    fed, oracle = run_with_failures(protocol, options, seed=5, fail_specs=[],
                                    total_time=600.0)
    report = assert_consistent(fed, oracle)
    assert report.erasures == 0
    assert report.messages > 0


# ----------------------------------------------------------------------
# non-vacuity: seed each violation class, the oracle must flag it
# ----------------------------------------------------------------------

def clean_run():
    fed, oracle = run_with_failures("hc3i", None, seed=1, fail_specs=[],
                                    total_time=400.0)
    assert oracle.check().ok
    return fed, oracle


def first_delivered(oracle):
    for msg_id in sorted(oracle.sends):
        if oracle.deliveries.get(msg_id):
            return msg_id
    raise AssertionError("no delivered inter-cluster message in the trace")


def violation_kinds(oracle):
    return {kind for kind, _ in oracle.check().violations}


def test_oracle_flags_orphan():
    _fed, oracle = clean_run()
    msg_id = first_delivered(oracle)
    # erase exactly the send instant on the sender; the delivery survives
    send = oracle.sends[msg_id][0]
    oracle.erasure_windows.setdefault(send.src_cluster, []).append(
        (send.time, send.time)
    )
    assert "orphan" in violation_kinds(oracle)


def test_oracle_flags_duplicate():
    _fed, oracle = clean_run()
    msg_id = first_delivered(oracle)
    d = oracle.deliveries[msg_id][0]
    oracle.deliveries[msg_id].append(
        DeliveryEvent(msg_id=msg_id, time=d.time + 1.0, cluster=d.cluster,
                      node=d.node, kind=d.kind)
    )
    assert "duplicate" in violation_kinds(oracle)


def test_oracle_flags_lost():
    fed, oracle = clean_run()
    now = fed.sim.now
    oracle.sends[999999] = [
        SendEvent(msg_id=999999, time=now - 10.0, src_cluster=0,
                  dst_cluster=1, arrival=now - 9.0, kind="app")
    ]
    assert "lost" in violation_kinds(oracle)


def test_oracle_flags_unsourced():
    _fed, oracle = clean_run()
    oracle.deliveries[999999] = [
        DeliveryEvent(msg_id=999999, time=1.0, cluster=1, node="n1.0",
                      kind="app")
    ]
    assert "unsourced" in violation_kinds(oracle)


def test_in_flight_excuse_is_optional():
    fed, oracle = clean_run()
    now = fed.sim.now
    oracle.sends[999999] = [
        SendEvent(msg_id=999999, time=now - 0.001, src_cluster=0,
                  dst_cluster=1, arrival=now + 5.0, kind="app")
    ]
    report = oracle.check(allow_in_flight=True)
    assert report.ok and report.in_flight == 1
    strict = oracle.check(allow_in_flight=False)
    assert not strict.ok
    assert {kind for kind, _ in strict.violations} == {"lost"}


def test_erasure_interval_is_closed_on_the_left():
    """An event stamped exactly at the restored checkpoint's commit time is
    erased -- it is causally after the commit, not part of the state."""
    _fed, oracle = clean_run()
    oracle.erasure_windows[0] = [(100.0, 200.0)]
    assert oracle.erased(0, 100.0)
    assert oracle.erased(0, 200.0)
    assert not oracle.erased(0, 99.999999)
    assert not oracle.erased(0, 200.000001)
