"""Unit tests for generator-based processes, signals and interrupts."""

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.process import Interrupt, Process, Signal, Timeout, all_of


def run_gen(sim, gen, name="p"):
    return Process(sim, gen, name=name)


class TestTimeout:
    def test_timeout_advances_time(self, sim):
        log = []

        def proc():
            yield Timeout(5.0)
            log.append(sim.now)

        run_gen(sim, proc())
        sim.run()
        assert log == [5.0]

    def test_sequential_timeouts(self, sim):
        log = []

        def proc():
            yield Timeout(1.0)
            log.append(sim.now)
            yield Timeout(2.0)
            log.append(sim.now)

        run_gen(sim, proc())
        sim.run()
        assert log == [1.0, 3.0]

    def test_zero_timeout(self, sim):
        log = []

        def proc():
            yield Timeout(0.0)
            log.append(sim.now)

        run_gen(sim, proc())
        sim.run()
        assert log == [0.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_first_step_runs_via_event(self, sim):
        log = []

        def proc():
            log.append("started")
            yield Timeout(1.0)

        run_gen(sim, proc())
        assert log == []  # construction does not execute model code
        sim.run()
        assert log == ["started"]


class TestLifecycle:
    def test_result_captured(self, sim):
        def proc():
            yield Timeout(1.0)
            return 42

        p = run_gen(sim, proc())
        sim.run()
        assert not p.alive
        assert p.result == 42

    def test_alive_until_done(self, sim):
        def proc():
            yield Timeout(5.0)

        p = run_gen(sim, proc())
        sim.run(until=2.0)
        assert p.alive
        sim.run()
        assert not p.alive

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_exception_recorded_and_reraised(self, sim):
        def proc():
            yield Timeout(1.0)
            raise ValueError("boom")

        p = run_gen(sim, proc())
        with pytest.raises(ValueError):
            sim.run()
        assert not p.alive
        assert isinstance(p.failure, ValueError)

    def test_unsupported_yield_target_fails(self, sim):
        def proc():
            yield 12345

        p = run_gen(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()
        assert not p.alive


class TestJoin:
    def test_join_waits_for_completion(self, sim):
        log = []

        def worker():
            yield Timeout(3.0)
            return "done"

        def waiter(w):
            res = yield w
            log.append((sim.now, res))

        w = run_gen(sim, worker())
        run_gen(sim, waiter(w))
        sim.run()
        assert log == [(3.0, "done")]

    def test_join_on_dead_process_resumes_immediately(self, sim):
        log = []

        def worker():
            return "early"
            yield  # pragma: no cover

        def waiter(w):
            res = yield w
            log.append((sim.now, res))

        w = run_gen(sim, worker())
        sim.run(until=1.0)
        run_gen(sim, waiter(w))
        sim.run()
        assert log == [(1.0, "early")]

    def test_all_of_collects_results(self, sim):
        def worker(d, v):
            yield Timeout(d)
            return v

        ws = [run_gen(sim, worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        combined = all_of(sim, ws)
        sim.run()
        assert combined.result == [30.0, 10.0, 20.0]


class TestInterrupt:
    def test_interrupt_raises_inside_generator(self, sim):
        log = []

        def proc():
            try:
                yield Timeout(100.0)
            except Interrupt as exc:
                log.append((sim.now, exc.cause))

        p = run_gen(sim, proc())
        sim.schedule(5.0, p.interrupt, "failure")
        sim.run()
        assert log == [(5.0, "failure")]

    def test_interrupt_cancels_pending_timeout(self, sim):
        log = []

        def proc():
            try:
                yield Timeout(100.0)
            except Interrupt:
                return
            log.append("should not happen")

        p = run_gen(sim, proc())
        sim.schedule(5.0, p.interrupt)
        sim.run()
        assert log == []
        assert not p.alive
        assert sim.now == 5.0  # the 100s timeout did not hold the clock

    def test_interrupt_dead_process_is_noop(self, sim):
        def proc():
            yield Timeout(1.0)

        p = run_gen(sim, proc())
        sim.run()
        p.interrupt()
        sim.run()

    def test_uncaught_interrupt_kills_cleanly(self, sim):
        def proc():
            yield Timeout(100.0)

        p = run_gen(sim, proc())
        sim.schedule(1.0, p.interrupt, "kill")
        sim.run()
        assert not p.alive
        assert p.failure is None  # a clean kill, not an error

    def test_process_can_continue_after_interrupt(self, sim):
        log = []

        def proc():
            try:
                yield Timeout(100.0)
            except Interrupt:
                pass
            yield Timeout(1.0)
            log.append(sim.now)

        p = run_gen(sim, proc())
        sim.schedule(5.0, p.interrupt)
        sim.run()
        assert log == [6.0]

    def test_interrupt_while_waiting_on_signal(self, sim):
        sig = Signal(sim)
        log = []

        def proc():
            try:
                yield sig
            except Interrupt:
                log.append("interrupted")

        p = run_gen(sim, proc())
        sim.schedule(2.0, p.interrupt)
        sim.run()
        assert log == ["interrupted"]
        # the signal no longer holds a reference to the dead process
        sig.trigger("x")
        sim.run()


class TestSignal:
    def test_wait_then_trigger(self, sim):
        log = []
        sig = Signal(sim)

        def proc():
            value = yield sig
            log.append((sim.now, value))

        run_gen(sim, proc())
        sim.schedule(4.0, sig.trigger, "go")
        sim.run()
        assert log == [(4.0, "go")]

    def test_triggered_signal_resumes_immediately(self, sim):
        log = []
        sig = Signal(sim)
        sig.trigger("pre")

        def proc():
            value = yield sig
            log.append(value)

        run_gen(sim, proc())
        sim.run()
        assert log == ["pre"]

    def test_multiple_waiters_all_resume(self, sim):
        log = []
        sig = Signal(sim)

        def proc(tag):
            yield sig
            log.append(tag)

        for tag in "abc":
            run_gen(sim, proc(tag))
        sim.schedule(1.0, sig.trigger)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_double_trigger_is_noop(self, sim):
        sig = Signal(sim)
        sig.trigger(1)
        sig.trigger(2)
        assert sig.value == 1

    def test_reset_rearms(self, sim):
        log = []
        sig = Signal(sim)
        sig.trigger("first")
        sig.reset()
        assert not sig.triggered

        def proc():
            value = yield sig
            log.append(value)

        run_gen(sim, proc())
        sim.schedule(1.0, sig.trigger, "second")
        sim.run()
        assert log == ["second"]
