"""Tests for the four baseline protocols."""

import pytest

from repro.baselines.independent import domino_targets
from repro.network.message import NodeId
from tests.conftest import make_federation


class TestGlobalCoordinated:
    def test_periodic_global_checkpoints(self):
        fed = make_federation(
            protocol="global-coordinated", clc_period=100.0, total_time=1000.0
        )
        results = fed.run()
        # initial + ~9 periodic
        assert 8 <= fed.protocol.checkpoint_number <= 11

    def test_requests_cross_clusters(self):
        fed = make_federation(
            protocol="global-coordinated", nodes=2, n_clusters=2,
            clc_period=None, total_time=50.0,
        )
        results = fed.run()
        # one round: 3 requests (all nodes but the initiator)
        assert results.counter("net/protocol/clc_request") == 3
        assert results.counter("net/protocol/clc_ack") == 3
        assert results.counter("net/protocol_inter") >= 4  # WAN crossings

    def test_freeze_time_reflects_wan_latency(self):
        fed = make_federation(
            protocol="global-coordinated", clc_period=None, total_time=50.0
        )
        fed.run()
        freeze = fed.stats.tally("global/freeze_time")
        assert freeze.count > 0
        # freeze spans at least two WAN hops (~300 us), far above SAN RTT
        assert freeze.mean > 250e-6

    def test_failure_rolls_back_everyone(self):
        fed = make_federation(
            protocol="global-coordinated", clc_period=100.0, total_time=1000.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=450.0)
        fed.inject_failure(NodeId(1, 1))
        results = fed.run()
        assert results.counter("rollback/clusters_rolled") == 2
        lost = fed.stats.tally("rollback/lost_work")
        assert lost.count == 6  # every node of both clusters

    def test_apps_restart_everywhere(self):
        fed = make_federation(
            protocol="global-coordinated", clc_period=100.0, total_time=1000.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=450.0)
        fed.inject_failure(NodeId(0, 2))
        fed.sim.run(until=600.0)
        for cluster in fed.clusters:
            for node in cluster.nodes:
                assert node.up
                assert node.app_process is not None and node.app_process.alive


class TestDominoTargets:
    def test_no_messages_only_faulty_rolls(self):
        targets = domino_targets([[1, 2], [1, 2]], edges=[], failed=0)
        assert targets == [2, None]

    def test_ghost_pulls_receiver_back(self):
        # c0 sent in epoch 2 (after checkpoint 2), received by c1 in epoch 1
        edges = [(0, 2, 1, 1)]
        targets = domino_targets([[1, 2], [1, 2]], edges, failed=0)
        # c0 restores 2 -> send epoch 2 erased -> c1 must erase the receive
        # (epoch 1): newest checkpoint <= 1 is 1
        assert targets == [2, 1]

    def test_in_transit_pulls_sender_back(self):
        # c1 sent in epoch 1, c0 received in epoch 2 (erased by rollback)
        edges = [(1, 1, 0, 2)]
        targets = domino_targets([[1, 2], [1, 2]], edges, failed=0)
        assert targets[0] == 2
        assert targets[1] == 1  # sender must unsend

    def test_domino_cascade(self):
        # c0's epoch-3 send was received by c1 in epoch 2 (ghost after the
        # failure), and c1's epoch-2 send was received by c0 in epoch 2:
        # the cascade unwinds both clusters one interval further.
        edges = [
            (0, 1, 1, 1),
            (1, 1, 0, 1),
            (0, 3, 1, 2),
            (1, 2, 0, 2),
        ]
        targets = domino_targets([[1, 2, 3], [1, 2, 3]], edges, failed=0)
        assert targets == [2, 2]

    def test_rolling_to_last_checkpoint_is_harmless(self):
        # all exchanges predate the last checkpoints: only the faulty
        # cluster rolls (to its last CLC), nobody else moves
        edges = [
            (0, 1, 1, 1),
            (1, 1, 0, 1),
            (0, 2, 1, 2),
            (1, 2, 0, 2),
        ]
        targets = domino_targets([[1, 2, 3], [1, 2, 3]], edges, failed=0)
        assert targets == [3, None]

    def test_kept_messages_dont_trigger(self):
        edges = [(0, 0, 1, 0)]  # exchanged before any checkpoint of interest
        targets = domino_targets([[1, 2], [1, 2]], edges, failed=0)
        assert targets == [2, None]

    def test_needs_checkpoint(self):
        with pytest.raises(ValueError):
            domino_targets([[], [1]], [], failed=0)


class TestIndependentProtocol:
    def test_periodic_cluster_checkpoints(self):
        fed = make_federation(
            protocol="independent", clc_period=100.0, total_time=1000.0
        )
        results = fed.run()
        for c in range(2):
            assert results.clc_counts(c)["total"] >= 9
            assert results.clc_counts(c)["forced"] == 0

    def test_dependencies_recorded(self):
        fed = make_federation(
            protocol="independent", clc_period=100.0, total_time=1000.0,
            chatty=True,
        )
        results = fed.run()
        assert len(fed.protocol.edges) > 0
        assert results.clusters[0]["dependency_edges"] > 0

    def test_failure_uses_domino(self):
        fed = make_federation(
            protocol="independent", clc_period=100.0, total_time=2000.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=900.0)
        fed.inject_failure(NodeId(0, 1))
        results = fed.run()
        assert results.counter("rollback/failures") == 1
        assert results.counter("rollback/total") >= 1
        depth = fed.stats.tally("independent/rollback_depth")
        assert depth.count >= 1

    def test_erased_edges_pruned(self):
        fed = make_federation(
            protocol="independent", clc_period=100.0, total_time=2000.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=900.0)
        edges_before = len(fed.protocol.edges)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=1200.0)
        for src, s_e, dst, r_e in fed.protocol.edges:
            st_s = fed.protocol.states[src]
            st_d = fed.protocol.states[dst]
            assert s_e <= st_s.sn
            assert r_e <= st_d.sn


class TestPessimisticLog:
    def test_every_message_logged(self):
        fed = make_federation(
            protocol="pessimistic-log", clc_period=200.0, total_time=1000.0,
            chatty=True,
        )
        results = fed.run()
        total_app = sum(results.messages.values())
        assert results.counter("pessimistic/log_messages") == total_app
        assert results.counter("pessimistic/log_bytes") > 0

    def test_only_failed_node_rolls_back(self):
        fed = make_federation(
            protocol="pessimistic-log", clc_period=200.0, total_time=1000.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=400.0)
        victim = fed.node(NodeId(0, 1))
        witness = fed.node(NodeId(0, 0))
        fed.inject_failure(victim.id)
        fed.sim.run(until=600.0)
        results = fed.results()
        assert results.counter("rollback/nodes_rolled") == 1
        assert victim.up
        # the witness's app process was never interrupted
        assert witness.app_process is not None and witness.app_process.alive

    def test_per_node_checkpoints_staggered(self):
        fed = make_federation(
            protocol="pessimistic-log", nodes=4, clc_period=200.0,
            total_time=1000.0,
        )
        results = fed.run()
        # 8 nodes x (initial + ~4-5 periodic)
        total = sum(results.clc_counts(c)["total"] for c in range(2))
        assert total >= 8 * 4

    def test_lost_work_single_node_scale(self):
        fed = make_federation(
            protocol="pessimistic-log", clc_period=200.0, total_time=1000.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=500.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=700.0)
        lost = fed.stats.tally("rollback/lost_work")
        assert lost.count == 1  # one node's work, not a cluster's


class TestCicAlways:
    def test_forces_per_message(self):
        from repro.app.process import scripted_sender_factory

        sends = [(float(t), NodeId(1, 0), 100) for t in range(10, 100, 10)]
        fed = make_federation(
            protocol="cic-always",
            clc_period=None,
            total_time=300.0,
            app_factory=scripted_sender_factory({NodeId(0, 0): sends}),
        )
        results = fed.run()
        assert results.clc_counts(1)["forced"] == len(sends)

    def test_hc3i_forces_once_for_same_sn(self):
        from repro.app.process import scripted_sender_factory

        sends = [(float(t), NodeId(1, 0), 100) for t in range(10, 100, 10)]
        fed = make_federation(
            protocol="hc3i",
            clc_period=None,
            total_time=300.0,
            app_factory=scripted_sender_factory({NodeId(0, 0): sends}),
        )
        results = fed.run()
        assert results.clc_counts(1)["forced"] == 1

    def test_registered_with_mode_always(self):
        fed = make_federation(protocol="cic-always", total_time=10.0)
        assert fed.protocol.options.mode == "always"

    def test_transitive_registered_with_mode_ddv(self):
        fed = make_federation(protocol="hc3i-transitive", total_time=10.0)
        assert fed.protocol.options.mode == "ddv"
