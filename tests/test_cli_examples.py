"""Smoke tests for the CLI and the example scripts."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.loader import ScenarioConfig
from repro.config.timers import TimersConfig
from repro.network.topology import two_cluster_topology

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def _example_env() -> dict:
    """Subprocess env with ``src/`` importable, installed or not."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return env


@pytest.fixture
def scenario_file(tmp_path):
    scenario = ScenarioConfig(
        topology=two_cluster_topology(nodes=2),
        application=ApplicationConfig(
            clusters=[
                ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.8, 0.2]),
                ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.2, 0.8]),
            ],
            total_time=200.0,
        ),
        timers=TimersConfig(clc_periods=[60.0, 60.0]),
    )
    path = tmp_path / "scenario.json"
    scenario.save(path)
    return path


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["--scenario", "x.json", "--seed", "9"])
        assert args.scenario == "x.json"
        assert args.seed == 9

    def test_scenario_run(self, scenario_file, capsys):
        rc = main(["--scenario", str(scenario_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "protocol=hc3i" in out
        assert "committed CLCs" in out

    def test_json_output(self, scenario_file, capsys):
        rc = main(["--scenario", str(scenario_file), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "hc3i"
        assert payload["duration"] == 200.0
        assert "0->0" in payload["messages"]

    def test_protocol_override(self, scenario_file, capsys):
        rc = main([
            "--scenario", str(scenario_file), "--protocol", "independent", "--json"
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["protocol"] == "independent"

    def test_until_flag(self, scenario_file, capsys):
        rc = main(["--scenario", str(scenario_file), "--until", "50", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["duration"] == 50.0

    def test_missing_files_rejected(self):
        with pytest.raises(SystemExit):
            main(["--topology", "only-this.json"])

    def test_three_file_invocation(self, tmp_path, capsys):
        from repro.config.loader import topology_to_dict

        (tmp_path / "topo.json").write_text(
            json.dumps(topology_to_dict(two_cluster_topology(nodes=2)))
        )
        (tmp_path / "app.json").write_text(json.dumps({
            "clusters": [
                {"mean_compute": 30.0, "send_probabilities": [0.9, 0.1]},
                {"mean_compute": 30.0, "send_probabilities": [0.1, 0.9]},
            ],
            "total_time": 120.0,
        }))
        (tmp_path / "timers.json").write_text(json.dumps({"clc_periods": [60, 60]}))
        rc = main([
            "--topology", str(tmp_path / "topo.json"),
            "--application", str(tmp_path / "app.json"),
            "--timers", str(tmp_path / "timers.json"),
        ])
        assert rc == 0

    def test_trace_output(self, scenario_file, capsys):
        rc = main(["--scenario", str(scenario_file), "--trace", "protocol"])
        assert rc == 0
        assert "clc_commit" in capsys.readouterr().out


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "failure_recovery.py",
        "garbage_collection.py",
        "code_coupling_pipeline.py",
        "protocol_comparison.py",
        "config_files.py",
    ],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
