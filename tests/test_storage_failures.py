"""Unit tests for stable storage placement and failure injection."""

import pytest

from repro.cluster.storage import StableStorage
from repro.network.message import NodeId
from tests.conftest import make_federation


class TestStableStorage:
    def test_replica_holders_ring(self):
        st = StableStorage(cluster=0, n_nodes=5, replication_degree=2)
        assert st.replica_holders(0) == [1, 2]
        assert st.replica_holders(4) == [0, 1]  # wraps around
        assert st.holders_of(3) == [3, 4, 0]

    def test_degree_bounded_by_cluster_size(self):
        st = StableStorage(cluster=0, n_nodes=3, replication_degree=10)
        assert st.replication_degree == 2
        assert st.requested_degree == 10

    def test_states_held_paper_sizing(self):
        """§5.4: 63 CLCs with degree 1 -> 126 local states per node."""
        st = StableStorage(cluster=0, n_nodes=100, replication_degree=1)
        assert st.states_held_by(0, stored_clcs=63) == 126

    def test_bytes_held(self):
        st = StableStorage(cluster=0, n_nodes=4, replication_degree=1)
        assert st.bytes_held_by(0, stored_clcs=3, state_size=1000) == 6000

    def test_single_fault_recoverable_degree_one(self):
        st = StableStorage(cluster=0, n_nodes=5, replication_degree=1)
        for node in range(5):
            assert st.recoverable([node])

    def test_adjacent_double_fault_lost_degree_one(self):
        """§3.1: "only one simultaneous fault in a cluster is tolerated"."""
        st = StableStorage(cluster=0, n_nodes=5, replication_degree=1)
        assert not st.recoverable([2, 3])  # node 2's replica lives on 3
        assert st.recoverable([2, 4])      # non-adjacent pair happens to be fine

    def test_degree_two_survives_two_faults(self):
        st = StableStorage(cluster=0, n_nodes=6, replication_degree=2)
        for pair in [(0, 1), (2, 3), (1, 4)]:
            assert st.recoverable(pair)
        assert not st.recoverable([0, 1, 2])  # node 0 and both replicas

    def test_degree_zero_nothing_survives(self):
        st = StableStorage(cluster=0, n_nodes=3, replication_degree=0)
        assert not st.recoverable([1])
        assert st.max_tolerated_faults() == 0

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            StableStorage(0, 3, 1).recoverable([7])

    def test_validation(self):
        with pytest.raises(ValueError):
            StableStorage(0, 0, 1)
        with pytest.raises(ValueError):
            StableStorage(0, 3, -1)


class TestFailureInjection:
    def test_manual_injection_fails_node(self):
        fed = make_federation()
        fed.start()
        fed.sim.run(until=10.0)
        node = fed.node(NodeId(0, 1))
        fed.inject_failure(node.id)
        assert not node.up
        assert node.failures == 1

    def test_failed_node_sends_nothing(self):
        fed = make_federation()
        fed.start()
        fed.sim.run(until=10.0)
        node = fed.node(NodeId(0, 1))
        node.fail()
        before = fed.fabric.protocol_message_count()
        from repro.network.message import MessageKind
        assert node.send_raw(NodeId(0, 0), MessageKind.INTER_ACK, 10) is None
        assert fed.fabric.protocol_message_count() == before

    def test_detection_triggers_rollback(self):
        fed = make_federation()
        fed.start()
        fed.sim.run(until=10.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=20.0)
        assert fed.tracer.first("rollback", cluster=0) is not None

    def test_node_recovers_after_rollback(self):
        fed = make_federation()
        fed.start()
        fed.sim.run(until=10.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=30.0)
        assert fed.node(NodeId(0, 1)).up

    def test_recovery_signal_triggered(self):
        fed = make_federation()
        fed.start()
        fed.sim.run(until=10.0)
        sig = fed.recovery_signal(0)
        fed.inject_failure(NodeId(0, 0))
        fed.sim.run(until=30.0)
        assert sig.triggered

    def test_mtbf_injector_causes_failures(self):
        from tests.conftest import (
            chatty_application,
            default_timers,
            small_topology,
        )
        from repro.cluster.federation import Federation

        topo = small_topology()
        topo.mtbf = 150.0
        fed = Federation(
            topo,
            chatty_application(total_time=1500.0),
            default_timers(clc_period=100.0),
            seed=4,
        )
        results = fed.run()
        assert results.counter("failures/injected") >= 1
        assert results.counter("rollback/failures") >= 1

    def test_one_fault_at_a_time(self):
        """The injector never crashes a second node before recovery."""
        from tests.conftest import (
            chatty_application,
            default_timers,
            small_topology,
        )
        from repro.cluster.federation import Federation
        from repro.sim.trace import TraceLevel

        topo = small_topology()
        topo.mtbf = 80.0
        fed = Federation(
            topo,
            chatty_application(total_time=2000.0),
            default_timers(clc_period=100.0),
            seed=9,
            trace_level=TraceLevel.PROTOCOL,
        )
        fed.run()
        # every node_failed is followed by a recovery before the next one
        state = {"down": 0}
        for rec in fed.tracer.records:
            if rec.kind == "node_failed":
                state["down"] += 1
                assert state["down"] <= 1
            elif rec.kind == "recovery_complete":
                state["down"] = 0

    def test_failing_down_node_is_noop(self):
        fed = make_federation()
        fed.start()
        fed.sim.run(until=5.0)
        node = fed.node(NodeId(1, 1))
        node.fail()
        node.fail()
        assert node.failures == 1
