"""Unit tests for nodes, cluster runtimes and the protocol registry."""

import pytest

from repro.cluster.node import ClusterRuntime, Node
from repro.core.protocol import (
    BaseProtocol,
    make_protocol,
    protocol_names,
    register_protocol,
)
from repro.network.fabric import Fabric
from repro.network.message import Message, MessageKind, NodeId
from repro.network.topology import two_cluster_topology
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from tests.conftest import make_federation


class RecordingAgent:
    """Minimal agent double for node-level tests."""

    def __init__(self):
        self.received = []
        self.sent = []
        self.failed = 0
        self.recovered = 0

    def on_receive(self, msg):
        self.received.append(msg)

    def app_send(self, dst, size, payload=None):
        self.sent.append((dst, size))

    def buffer_while_down(self, msg):
        return msg.kind is MessageKind.ALERT

    def on_node_failed(self):
        self.failed += 1

    def on_node_recovered(self):
        self.recovered += 1


def build_node_pair():
    sim = Simulator()
    topo = two_cluster_topology(nodes=2)
    stats = StatsRegistry(lambda: sim.now)
    fabric = Fabric(sim, topo, stats)
    a = Node(NodeId(0, 0), sim, fabric)
    b = Node(NodeId(0, 1), sim, fabric)
    a.agent, b.agent = RecordingAgent(), RecordingAgent()
    a._stats = b._stats = stats
    return sim, a, b


class TestNode:
    def test_send_raw_and_receive(self):
        sim, a, b = build_node_pair()
        a.send_raw(b.id, MessageKind.INTER_ACK, size=10, payload={"x": 1})
        sim.run()
        assert len(b.agent.received) == 1
        assert b.agent.received[0].payload == {"x": 1}

    def test_send_app_goes_through_agent(self):
        sim, a, b = build_node_pair()
        a.send_app(b.id, 99)
        assert a.agent.sent == [(b.id, 99)]

    def test_down_node_drops_sends(self):
        sim, a, b = build_node_pair()
        a.fail()
        assert a.send_raw(b.id, MessageKind.INTER_ACK, size=10) is None
        a.send_app(b.id, 5)
        assert a.agent.sent == []

    def test_fail_notifies_agent_once(self):
        sim, a, b = build_node_pair()
        a.fail()
        a.fail()
        assert a.agent.failed == 1

    def test_recover_flushes_buffered(self):
        sim, a, b = build_node_pair()
        b.fail()
        a.send_raw(b.id, MessageKind.ALERT, size=10)      # buffered
        a.send_raw(b.id, MessageKind.INTER_ACK, size=10)  # dropped by policy
        sim.run()
        assert b.agent.received == []
        b.recover()
        assert len(b.agent.received) == 1
        assert b.agent.received[0].kind is MessageKind.ALERT
        assert b.agent.recovered == 1

    def test_recover_when_up_is_noop(self):
        sim, a, b = build_node_pair()
        a.recover()
        assert a.agent.recovered == 0

    def test_deliver_app_counts_and_sinks(self):
        sim, a, b = build_node_pair()
        got = []
        b.app_sink = got.append
        msg = Message(a.id, b.id, MessageKind.APP, 10)
        b.deliver_app(msg)
        assert got == [msg]

    def test_system_hook_consumes(self):
        sim, a, b = build_node_pair()
        b.system_hook = lambda m: True  # eat everything
        a.send_raw(b.id, MessageKind.INTER_ACK, size=10)
        sim.run()
        assert b.agent.received == []

    def test_system_hook_pass_through(self):
        sim, a, b = build_node_pair()
        b.system_hook = lambda m: False
        a.send_raw(b.id, MessageKind.INTER_ACK, size=10)
        sim.run()
        assert len(b.agent.received) == 1


class TestClusterRuntime:
    def test_leader_and_lookup(self):
        sim, a, b = build_node_pair()
        runtime = ClusterRuntime(0, [a, b])
        assert runtime.leader is a
        assert runtime.node(1) is b
        assert runtime.size == 2
        assert list(runtime) == [a, b]

    def test_up_nodes(self):
        sim, a, b = build_node_pair()
        runtime = ClusterRuntime(0, [a, b])
        b.fail()
        assert runtime.up_nodes() == [a]


class TestProtocolRegistry:
    def test_known_names(self):
        names = protocol_names()
        for expected in (
            "hc3i",
            "hc3i-transitive",
            "cic-always",
            "global-coordinated",
            "independent",
            "pessimistic-log",
        ):
            assert expected in names

    def test_unknown_name_raises_with_choices(self):
        fed = make_federation(total_time=10.0)
        with pytest.raises(ValueError, match="available"):
            make_protocol("nope", fed)

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):

            @register_protocol("hc3i")
            class Duplicate(BaseProtocol):  # pragma: no cover
                def make_agent(self, node):
                    raise NotImplementedError

                def start(self):
                    raise NotImplementedError

                def on_failure_detected(self, node):
                    raise NotImplementedError

    def test_name_attribute_set(self):
        from repro.core.hc3i import Hc3iProtocol

        assert Hc3iProtocol.name == "hc3i"

    def test_default_cluster_summary_empty(self):
        fed = make_federation(total_time=10.0)

        class Minimal(BaseProtocol):
            def make_agent(self, node):  # pragma: no cover
                raise NotImplementedError

            def start(self):  # pragma: no cover
                raise NotImplementedError

            def on_failure_detected(self, node):  # pragma: no cover
                raise NotImplementedError

        proto = Minimal(fed)
        assert proto.cluster_summary(0) == {}
        assert proto.sim is fed.sim
        assert proto.stats is fed.stats
