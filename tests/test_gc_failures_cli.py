"""Distributed GC under failures, and the CLI experiment registry."""

import pytest

from repro.network.message import NodeId
from tests.conftest import make_federation


class TestDistributedGcUnderFailure:
    def test_token_survives_leader_failure(self):
        """A GC token addressed to a crashed leader is buffered and the
        round resumes after recovery."""
        fed = make_federation(
            n_clusters=3,
            nodes=2,
            clc_period=60.0,
            gc_period=None,
            total_time=1500.0,
            chatty=True,
            protocol_options={"gc_mode": "distributed"},
            seed=21,
        )
        fed.start()
        fed.sim.run(until=400.0)
        # crash cluster 1's leader, then immediately start a round: the
        # token c0 -> c1 lands in the dead leader's buffer
        fed.inject_failure(NodeId(1, 0))
        gc = fed.protocol.garbage_collector
        gc.collect_now()
        fed.sim.run(until=420.0)
        # recovery flushed the buffer; the token continued around the ring
        assert gc.rounds_completed >= 1 or gc._round_active
        fed.run()
        assert gc.rounds_completed >= 1

    def test_round_guard_releases(self):
        """After a completed round another one can start."""
        fed = make_federation(
            nodes=2, clc_period=60.0, gc_period=None, total_time=1000.0,
            chatty=True, protocol_options={"gc_mode": "distributed"},
        )
        fed.start()
        fed.sim.run(until=300.0)
        gc = fed.protocol.garbage_collector
        gc.collect_now()
        fed.sim.run(until=400.0)
        assert gc.rounds_completed == 1
        gc.collect_now()
        fed.sim.run(until=500.0)
        assert gc.rounds_completed == 2

    def test_centralized_gc_with_failed_member_leader(self):
        """The centralized round stalls on a dead member leader and
        resumes when it recovers -- no prune from stale data."""
        fed = make_federation(
            nodes=2, clc_period=60.0, gc_period=None, total_time=1200.0,
            chatty=True, seed=31,
        )
        fed.start()
        fed.sim.run(until=400.0)
        fed.inject_failure(NodeId(1, 0))
        gc = fed.protocol.garbage_collector
        gc.collect_now()
        fed.run()
        # the round either completed after recovery or was skipped by the
        # epoch guard; in both cases invariants hold
        from repro.analysis.consistency import check_invariants

        assert check_invariants(fed) == []


class TestCliExperiments:
    def test_registry_names(self):
        from repro.cli import EXPERIMENTS

        for name in ("table1", "fig6-fig7", "fig8", "fig9", "table2",
                     "table3", "no-gc", "baselines", "mtbf", "scaling",
                     "overhead", "robustness"):
            assert name in EXPERIMENTS

    def test_run_experiment_small(self, capsys):
        from repro.cli import main

        rc = main(["--experiment", "table1", "--scale", "small"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment_rejected(self):
        from repro.cli import _run_experiment

        with pytest.raises(SystemExit):
            _run_experiment("nope", "small")

    def test_fixed_experiment_runs(self, capsys):
        from repro.cli import main

        rc = main(["--experiment", "ablation-replication"])
        assert rc == 0
        assert "replication" in capsys.readouterr().out
