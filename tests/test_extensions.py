"""Tests for the paper-§7 extensions and reproduction-specific features:
simultaneous faults, the heartbeat detector, incremental stable storage."""

import pytest

from repro.analysis.consistency import check_invariants, verify_consistency
from repro.cluster.federation import Federation
from repro.network.message import NodeId
from repro.sim.trace import TraceLevel
from tests.conftest import (
    chatty_application,
    default_timers,
    make_federation,
    small_topology,
)


class TestSimultaneousFaults:
    def test_two_clusters_fail_concurrently(self):
        fed = make_federation(
            n_clusters=3, nodes=2, clc_period=80.0, total_time=1200.0,
            chatty=True, seed=5,
        )
        fed.start()
        fed.sim.run(until=500.0)
        # crash a node in cluster 0 and cluster 2 at the same instant
        fed.inject_failure(NodeId(0, 1))
        fed.inject_failure(NodeId(2, 1))
        fed.run()
        assert fed.results().counter("rollback/failures") == 2
        for cluster in fed.clusters:
            for node in cluster.nodes:
                assert node.up
        report = verify_consistency(fed)
        assert report.ok, str(report)
        assert check_invariants(fed) == []

    def test_concurrent_epochs_advance_independently(self):
        fed = make_federation(
            n_clusters=3, nodes=2, clc_period=80.0, total_time=1200.0,
            chatty=True, seed=6,
        )
        fed.start()
        fed.sim.run(until=500.0)
        fed.inject_failure(NodeId(0, 1))
        fed.inject_failure(NodeId(2, 0))
        fed.run()
        states = fed.protocol.cluster_states
        assert states[0].rollback_epoch >= 1
        assert states[2].rollback_epoch >= 1

    def test_injector_simultaneous_mode(self):
        topo = small_topology(n_clusters=3, nodes=2)
        topo.mtbf = 120.0
        fed = Federation(
            topo,
            chatty_application(n_clusters=3, total_time=1500.0),
            default_timers(n_clusters=3, clc_period=100.0),
            seed=14,
            trace_level=TraceLevel.PROTOCOL,
            allow_simultaneous_faults=True,
        )
        results = fed.run()
        assert results.counter("failures/injected") >= 2
        report = verify_consistency(fed)
        assert report.ok, str(report)

    def test_injector_never_hits_recovering_cluster(self):
        """Victims are only drawn from healthy clusters."""
        topo = small_topology(n_clusters=2, nodes=3)
        topo.mtbf = 60.0
        fed = Federation(
            topo,
            chatty_application(total_time=1500.0),
            default_timers(clc_period=100.0),
            seed=15,
            trace_level=TraceLevel.PROTOCOL,
            allow_simultaneous_faults=True,
        )
        fed.run()
        # reconstruct per-cluster fault windows from the trace: no second
        # node_failed for a cluster before its recovery_complete
        open_failures: dict = {}
        for rec in fed.tracer.records:
            if rec.kind == "node_failed":
                c = rec["cluster"]
                assert not open_failures.get(c, False), (
                    "second fault hit a cluster still recovering"
                )
                open_failures[c] = True
            elif rec.kind == "recovery_complete":
                open_failures[rec["cluster"]] = False


class TestHeartbeatDetector:
    def heartbeat_fed(self, **kw):
        timers = default_timers(clc_period=100.0)
        timers.detector = "heartbeat"
        timers.heartbeat_period = 0.5
        timers.heartbeat_timeout = 1.6
        return Federation(
            small_topology(n_clusters=2, nodes=3),
            chatty_application(total_time=kw.pop("total_time", 600.0)),
            timers,
            seed=kw.pop("seed", 3),
            trace_level=TraceLevel.PROTOCOL,
            **kw,
        )

    def test_heartbeats_flow(self):
        fed = self.heartbeat_fed(total_time=30.0)
        results = fed.run()
        assert results.counter("net/protocol/heartbeat") > 0

    def test_crash_detected_within_timeout_plus_period(self):
        fed = self.heartbeat_fed()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 2))
        fed.sim.run(until=110.0)
        suspect = fed.tracer.first("heartbeat_suspect", cluster=0, node=2)
        assert suspect is not None
        assert suspect.time - 100.0 <= 1.6 + 2 * 0.5 + 0.1
        # and the rollback actually happened through that detection
        assert fed.tracer.first("rollback", cluster=0) is not None

    def test_leader_crash_detected_by_node_one(self):
        fed = self.heartbeat_fed()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(1, 0))  # the cluster leader
        fed.sim.run(until=110.0)
        assert fed.tracer.first("heartbeat_suspect", cluster=1, node=0) is not None

    def test_no_false_positives_without_failures(self):
        fed = self.heartbeat_fed(total_time=300.0)
        results = fed.run()
        assert results.counter("failures/detected") == 0
        assert fed.detector.suspects_raised == 0

    def test_each_failure_reported_once(self):
        fed = self.heartbeat_fed()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=200.0)
        assert fed.detector.suspects_raised == 1
        assert fed.tracer.count("heartbeat_suspect") == 1

    def test_recovered_node_resumes_heartbeating(self):
        fed = self.heartbeat_fed()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=300.0)
        node = fed.node(NodeId(0, 1))
        assert node.up
        # after recovery the node is no longer on the reported list
        assert node.id not in fed.detector._reported

    def test_invalid_heartbeat_config_rejected(self):
        from repro.config.timers import TimersConfig

        with pytest.raises(ValueError):
            TimersConfig(detector="heartbeat", heartbeat_period=2.0,
                         heartbeat_timeout=1.0)
        with pytest.raises(ValueError):
            TimersConfig(detector="telepathy")


class TestIncrementalStorage:
    def test_delta_replicas_smaller(self):
        """Replica byte volume shrinks with incremental mode."""
        volumes = {}
        for label, options in (
            ("full", {}),
            ("incremental", {"incremental": True, "incremental_fraction": 0.1}),
        ):
            fed = make_federation(
                n_clusters=1, nodes=3, clc_period=50.0, total_time=500.0,
                protocol_options=options,
            )
            results = fed.run()
            volumes[label] = results.counter("net/bytes/protocol")
            # same number of replica messages either way
            volumes[label + "_msgs"] = results.counter("net/protocol/replica")
        assert volumes["full_msgs"] == volumes["incremental_msgs"]
        assert volumes["incremental"] < 0.5 * volumes["full"]

    def test_first_replica_is_full(self):
        fed = make_federation(
            n_clusters=1, nodes=2, clc_period=None, total_time=50.0,
            protocol_options={"incremental": True, "incremental_fraction": 0.1},
        )
        results = fed.run()  # only the initial CLC
        state_size = fed.timers.node_state_size
        # 2 nodes x 1 full replica each
        assert results.counter("net/bytes/protocol") >= 2 * state_size

    def test_rollback_restarts_delta_chain(self):
        fed = make_federation(
            n_clusters=1, nodes=2, clc_period=50.0, total_time=600.0,
            protocol_options={"incremental": True, "incremental_fraction": 0.1},
        )
        fed.start()
        fed.sim.run(until=200.0)
        for node in fed.clusters[0].nodes:
            assert node.agent.replicated_full
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=220.0)
        for node in fed.clusters[0].nodes:
            assert not node.agent.replicated_full
        fed.run()  # next CLCs re-establish the chain
        for node in fed.clusters[0].nodes:
            assert node.agent.replicated_full

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_federation(
                protocol_options={"incremental": True, "incremental_fraction": 0.0}
            )

    def test_ablation_experiment(self):
        from repro.experiments.ablations import incremental_checkpoint_ablation

        exp = incremental_checkpoint_ablation(nodes=4, total_time=3600.0, seed=2)
        full, inc = exp.rows
        assert inc[3] < full[3]       # fewer protocol bytes
        assert inc[2] == pytest.approx(full[2], abs=6)  # similar message counts
