"""Tests for ``repro lint`` -- the static determinism/concurrency checker.

Three layers, mirroring the consistency oracle's seeded-violation
pattern:

* the **tier-1 gate**: linting ``src/repro`` with the default config
  yields zero unsuppressed findings (and the committed baseline is
  empty), so a PR that introduces a banned pattern fails this file;
* **non-vacuity**: every registered rule fires on a seeded-violation
  fixture under ``tests/fixtures/lint/`` and stays silent on the
  paired clean fixture -- a rule that cannot catch its own motivating
  incident is a bug here, not a shrug;
* **machinery**: suppression comments, baseline ratchet, CLI exit
  codes and JSON output.
"""

from __future__ import annotations

import configparser
import json
import re
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.lint import LintConfig, LintError, all_rules, run_lint
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import lint_main
from repro.lint.engine import Finding, load_project

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(repro.__file__).parent
REPO_ROOT = Path(__file__).parent.parent

#: fixture scopes -- the same rules, re-pointed at the seeded violations
FIXTURE_CONFIG = LintConfig(
    determinism_scopes=(
        "det001_fires",
        "det001_clean",
        "det002_fires",
        "det002_clean",
        "suppressed",
    ),
    snapshot_roots=("snap_pkg.snapshot",),
    async_scopes=("async001_fires", "async001_clean"),
    wire_scopes=("wire001_fires", "wire001_clean"),
)

#: rule id -> fixture that must make it fire (non-vacuity)
FIRES_FIXTURES = {
    "ASYNC001": "async001_fires.py",
    "DET001": "det001_fires.py",
    "DET002": "det002_fires.py",
    "LOCK001": "lock001_fires.py",
    "SNAP001": "snap_pkg",
    "WIRE001": "wire001_fires.py",
}

#: rule id -> fixture that must stay silent (no false positives)
CLEAN_FIXTURES = {
    "ASYNC001": "async001_clean.py",
    "DET001": "det001_clean.py",
    "DET002": "det002_clean.py",
    "LOCK001": "lock001_clean.py",
    "WIRE001": "wire001_clean.py",
}


def lint_fixture(name, rules=None):
    return run_lint([FIXTURES / name], config=FIXTURE_CONFIG, rules=rules)


# ------------------------------------------------------------- tier-1 gate


class TestRepoIsClean:
    def test_src_has_zero_unsuppressed_findings(self):
        report = run_lint([SRC])
        assert not report.findings, "\n".join(
            f.format() for f in report.findings
        )
        # the run is real: it saw the whole package and every rule
        assert report.files_checked > 80
        assert set(report.rules_run) == set(all_rules())

    def test_committed_baseline_is_empty(self):
        entries = load_baseline(REPO_ROOT / "tools" / "lint_baseline.json")
        assert entries == []

    def test_every_src_suppression_states_a_reason(self):
        """``ignore[RULE]`` in src/ must carry a ``--`` justification."""
        pattern = re.compile(r"repro-lint:\s*ignore\[[^\]]+\](.*)")
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                match = pattern.search(line)
                if match and "--" not in match.group(1):
                    offenders.append(f"{path}:{lineno}")
        assert not offenders, offenders

    def test_src_suppressions_are_load_bearing(self):
        """Every in-tree suppression silences a finding that would fire."""
        report = run_lint([SRC])
        assert len(report.suppressed) == 2
        suppressed_paths = {Path(f.path).name for f in report.suppressed}
        assert suppressed_paths == {"message.py", "process.py"}


# ------------------------------------------------------- rule non-vacuity


class TestRuleFixtures:
    def test_registry_and_fixture_map_agree(self):
        assert set(FIRES_FIXTURES) == set(all_rules())

    @pytest.mark.parametrize("rule_id", sorted(FIRES_FIXTURES))
    def test_rule_fires_on_seeded_violation(self, rule_id):
        report = lint_fixture(FIRES_FIXTURES[rule_id], rules=[rule_id])
        assert report.findings, f"{rule_id} is vacuous on its fixture"
        assert {f.rule for f in report.findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(CLEAN_FIXTURES))
    def test_rule_silent_on_clean_fixture(self, rule_id):
        report = lint_fixture(CLEAN_FIXTURES[rule_id], rules=[rule_id])
        assert not report.findings, "\n".join(
            f.format() for f in report.findings
        )

    def test_every_rule_documents_an_incident(self):
        for rule in all_rules().values():
            assert rule.incident != "?" and len(rule.incident) > 40
            assert rule.title != "?"

    def test_det001_catches_each_entropy_shape(self):
        report = lint_fixture("det001_fires.py", rules=["DET001"])
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 10
        assert "process-global PRNG" in messages
        assert "wall clock" in messages
        assert "os.environ" in messages
        assert "bare set" in messages

    def test_det002_spares_dunder_hash(self):
        report = lint_fixture("det002_clean.py", rules=["DET002"])
        assert not report.findings
        report = lint_fixture("det002_fires.py", rules=["DET002"])
        assert len(report.findings) == 2

    def test_snap001_reconstructs_the_pr6_bug(self):
        """The PR 6 sentinel-`is` shape fires inside the closure only."""
        report = lint_fixture("snap_pkg", rules=["SNAP001"])
        by_file = {}
        for finding in report.findings:
            by_file.setdefault(Path(finding.path).name, []).append(finding)
        # restore.py: `is` sentinel, `is not` sentinel, `is 0`
        assert len(by_file.pop("restore.py")) == 3
        # snapshot.py has no identity compares; unrelated.py is OUTSIDE
        # the import closure, so its sentinel-`is` must not fire
        assert not by_file, by_file
        messages = " ".join(f.message for f in report.findings)
        assert "pickle boundary" in messages
        assert "_COMMITTING" in messages or "string sentinel" in messages

    def test_lock001_reconstructs_the_pr8_bug(self):
        report = lint_fixture("lock001_fires.py", rules=["LOCK001"])
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert any("never released" in m for m in messages)
        assert any("buffered bytes outside the lock" in m for m in messages)

    def test_lock001_accepts_the_fixed_shape(self):
        # the sibling-nested-try shape of cache.py:_locked_append
        report = lint_fixture("lock001_clean.py", rules=["LOCK001"])
        assert not report.findings

    def test_lock001_accepts_the_real_journal_appender(self):
        cache = SRC / "experiments" / "cache.py"
        report = run_lint([cache], rules=["LOCK001"])
        assert not report.findings, "\n".join(
            f.format() for f in report.findings
        )

    def test_async001_counts_each_blocking_call(self):
        report = lint_fixture("async001_fires.py", rules=["ASYNC001"])
        assert len(report.findings) == 5
        messages = " | ".join(f.message for f in report.findings)
        assert "run_experiment" in messages
        assert "event loop" in messages

    def test_wire001_flags_each_unserializable_value(self):
        report = lint_fixture("wire001_fires.py", rules=["WIRE001"])
        assert len(report.findings) == 9
        messages = " | ".join(f.message for f in report.findings)
        assert "not JSON-serializable" in messages
        assert "canonical_params" in messages
        assert "different point" in messages  # the {1: ...} -> {'1': ...} trap


# ----------------------------------------------------------- suppressions


class TestSuppressions:
    def test_inline_and_multi_rule_suppressions(self):
        report = lint_fixture("suppressed.py")
        # one DET002 remains: its comment names the wrong rule id
        assert len(report.findings) == 1
        assert report.findings[0].rule == "DET002"
        assert "WRONG rule" in FIXTURES.joinpath(
            "suppressed.py"
        ).read_text().splitlines()[report.findings[0].line - 1]
        # hash-bucket DET002, plus DET001+DET002 on the comma line
        assert len(report.suppressed) == 3

    def test_suppression_is_per_line(self):
        """A waiver on line N must not silence the same rule elsewhere."""
        report = lint_fixture("det002_fires.py", rules=["DET002"])
        assert len(report.findings) == 2  # nothing suppressed by other files


# --------------------------------------------------------------- baseline


class TestBaseline:
    def _findings(self):
        return [
            Finding("DET001", "a.py", 3, 0, "msg one"),
            Finding("DET002", "b.py", 9, 4, "msg two"),
        ]

    def test_round_trip_and_line_insensitive_match(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        entries = load_baseline(path)
        moved = [
            Finding("DET001", "a.py", 33, 7, "msg one"),  # shifted lines
            Finding("DET002", "b.py", 9, 4, "msg CHANGED"),
        ]
        new, baselined = apply_baseline(moved, entries)
        assert [f.message for f in baselined] == ["msg one"]
        assert [f.message for f in new] == ["msg CHANGED"]

    def test_missing_baseline_is_an_error(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            load_baseline(tmp_path / "nope.json")

    def test_unknown_format_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": 99, "findings": []}))
        with pytest.raises(LintError, match="unknown format"):
            load_baseline(path)


# -------------------------------------------------------------------- CLI


class TestCli:
    """LOCK001 is unscoped, so fixtures work under the CLI's default config."""

    FIRES = str(FIXTURES / "lock001_fires.py")
    CLEAN = str(FIXTURES / "lock001_clean.py")

    def test_exit_one_on_findings(self, capsys):
        assert lint_main([self.FIRES]) == 1
        out = capsys.readouterr().out
        assert "LOCK001" in out
        assert "lock001_fires.py" in out
        assert "finding(s)" in out

    def test_exit_zero_on_clean(self, capsys):
        assert lint_main([self.CLEAN]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert lint_main([self.FIRES, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"LOCK001"}
        assert payload["files_checked"] == 1
        assert "LOCK001" in payload["rules_run"]
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message"}

    def test_rule_filter(self, capsys):
        assert lint_main([self.FIRES, "--rule", "ASYNC001"]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_exit_two(self, capsys):
        assert lint_main([self.FIRES, "--rule", "NOPE999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_exit_two(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out
        assert "incident" in out

    def test_baseline_flow(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert lint_main([self.FIRES, "--update-baseline", baseline]) == 0
        assert lint_main([self.FIRES, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # a clean file against the same baseline also passes
        assert lint_main([self.CLEAN, "--baseline", baseline]) == 0

    def test_missing_baseline_exit_two(self, capsys):
        missing = "definitely/not/a/baseline.json"
        assert lint_main([self.FIRES, "--baseline", missing]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_repro_cli_dispatch(self, capsys):
        """``repro lint`` routes through the package CLI."""
        assert cli_main(["lint", self.CLEAN]) == 0
        capsys.readouterr()


# ------------------------------------------------------------- engine bits


class TestEngine:
    def test_unknown_rule_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([FIXTURES / "det001_clean.py"], rules=["BOGUS1"])

    def test_unparsable_file_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError, match="cannot parse"):
            run_lint([bad])

    def test_snapshot_closure_covers_the_restore_path(self):
        """The real closure reaches the protocol/coordinator modules."""
        project = load_project([SRC])
        closure = project.snapshot_closure()
        for expected in (
            "repro.sim.snapshot",
            "repro.cluster.federation",
            "repro.core.clc",
            "repro.baselines",
        ):
            assert expected in closure
        # serve/ and analysis/ never contribute pickled state
        assert not any(name.startswith("repro.serve") for name in closure)
        assert not any(name.startswith("repro.analysis") for name in closure)

    def test_fixture_closure_is_scoped(self):
        project = load_project([FIXTURES / "snap_pkg"], FIXTURE_CONFIG)
        closure = project.snapshot_closure()
        assert "snap_pkg.snapshot" in closure
        assert "snap_pkg.restore" in closure
        assert "snap_pkg.unrelated" not in closure


# ------------------------------------------------------------ mypy ratchet

#: the strict-allowlist floor: mypy.ini must keep (at least) these
#: modules fully checked.  Growing the list is encouraged; shrinking it
#: fails here.
MYPY_STRICT_FLOOR = (
    "repro.network.message",
    "repro.network.topology",
    "repro.sim.trace_digest",
    "repro.serve.stats",
)


class TestMypyRatchet:
    def test_allowlist_can_only_grow(self):
        config = configparser.ConfigParser()
        read = config.read(REPO_ROOT / "mypy.ini")
        assert read, "mypy.ini is missing"
        assert config.getboolean("mypy", "ignore_errors"), (
            "global ignore_errors=True is the allowlist mechanism; "
            "strictness is opted into per module"
        )
        for module in MYPY_STRICT_FLOOR:
            section = f"mypy-{module}"
            assert config.has_section(section), (
                f"{section} left the mypy strict allowlist -- the "
                "allowlist may only grow (add modules, never remove)"
            )
            assert not config.getboolean(section, "ignore_errors"), (
                f"{section} is no longer strict"
            )
