"""Property-based tests of the *live* protocol.

Hypothesis generates random-but-valid scenarios (scripted inter-cluster
sends, manual checkpoints, one failure); the event-driven implementation
must then agree with the pure recovery-line model and keep the federation
consistent.  This is the strongest correctness check in the suite: it ties
the message-passing machinery (2PC, piggybacking, alerts over the network,
replays, ghosts) to the declarative §3.4 semantics.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.consistency import check_invariants, verify_consistency
from repro.app.process import scripted_sender_factory
from repro.core.recovery_line import cascade_targets
from repro.network.message import NodeId
from tests.conftest import make_federation


@st.composite
def scenario(draw):
    n_clusters = draw(st.integers(min_value=2, max_value=3))
    n_events = draw(st.integers(min_value=1, max_value=8))
    events = []
    t = 5.0
    for _ in range(n_events):
        t += draw(st.floats(min_value=2.0, max_value=15.0))
        kind = draw(st.sampled_from(["send", "clc"]))
        if kind == "send":
            src = draw(st.integers(0, n_clusters - 1))
            dst = draw(st.integers(0, n_clusters - 1))
            if src == dst:
                dst = (dst + 1) % n_clusters
            events.append(("send", t, src, dst))
        else:
            cluster = draw(st.integers(0, n_clusters - 1))
            events.append(("clc", t, cluster))
    faulty = draw(st.integers(0, n_clusters - 1))
    return n_clusters, events, faulty


def build_and_run(n_clusters, events, faulty):
    scripts: dict = {}
    for event in events:
        if event[0] == "send":
            _, t, src, dst = event
            scripts.setdefault(NodeId(src, 1), []).append(
                (t, NodeId(dst, 1), 256)
            )
    fed = make_federation(
        n_clusters=n_clusters,
        nodes=2,
        clc_period=None,
        total_time=600.0,
        app_factory=scripted_sender_factory(scripts),
    )
    fed.start()
    for event in events:
        if event[0] == "clc":
            _, t, cluster = event
            fed.sim.schedule_at(t, fed.protocol.request_checkpoint, cluster)
    # let every send/checkpoint settle, then snapshot and fail
    last_t = max((e[1] for e in events), default=5.0)
    fed.sim.run(until=last_t + 30.0)
    states = fed.protocol.cluster_states
    stored = [cs.store.ddv_list() for cs in states]
    current = [cs.ddv_tuple() for cs in states]
    dirty = [cs.state_dirty for cs in states]
    predicted = cascade_targets(stored, current, failed=faulty)
    fed.inject_failure(NodeId(faulty, 1))
    fed.sim.run(until=last_t + 200.0)
    return fed, predicted, dirty


@given(scenario())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_live_cascade_matches_pure_model(params):
    n_clusters, events, faulty = params
    fed, predicted, dirty = build_and_run(n_clusters, events, faulty)
    for c, target in enumerate(predicted):
        # Alerts arrive asynchronously, so a cluster may descend to the
        # recovery line in several steps (each recorded); the property is
        # that the *fixpoint* -- the last rollback -- matches the pure
        # model, and intermediate steps never undershoot it.
        recs = [r for r in fed.tracer.find("rollback") if r["cluster"] == c]
        rec = recs[-1] if recs else None
        if target is None:
            assert rec is None, f"cluster {c} rolled back unexpectedly"
        else:
            for step in recs:
                assert step["to_sn"] >= target, "rolled back past the line"
            cs = fed.protocol.cluster_states[c]
            if c == faulty or dirty[c] or cs.rollback_epoch > 0:
                # a real rollback happened (or the no-op guard fired for a
                # clean state sitting exactly on the target)
                if rec is not None:
                    assert rec["to_sn"] == target
                else:
                    # no-op guard: the cluster was already exactly at the
                    # predicted target with a clean state
                    assert cs.sn == target
            else:
                if rec is not None:
                    assert rec["to_sn"] == target


@given(scenario())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_live_run_always_consistent_after_failure(params):
    n_clusters, events, faulty = params
    fed, _predicted, _dirty = build_and_run(n_clusters, events, faulty)
    report = verify_consistency(fed)
    assert report.ok, str(report)
    assert check_invariants(fed) == []


@given(scenario())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_everyone_recovers(params):
    n_clusters, events, faulty = params
    fed, _predicted, _dirty = build_and_run(n_clusters, events, faulty)
    for cluster in fed.clusters:
        for node in cluster.nodes:
            assert node.up
    for cs in fed.protocol.cluster_states:
        assert not cs.recovering
