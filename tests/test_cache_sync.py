"""Tests for federation cache sync (export/import/merge) and journal hardening.

The acceptance scenario: a sweep finished at site A is exported, carried
to site B, imported, and a re-run at site B is served entirely from the
cache -- with the provenance journal still answering "who computed
this?".  Fault injection: stale archives (different code version) must be
rejected without corrupting the local cache, and the journal must
survive concurrent/interleaved appenders.
"""

from __future__ import annotations

import json
import tarfile
import threading

import pytest

from repro.cli import main
from repro.experiments.cache import ResultCache, code_version_hash
from repro.experiments.cache_sync import (
    CacheSyncError,
    export_cache,
    import_cache,
    merge_caches,
)
from repro.experiments.runner import run_experiment

TINY = {"nodes": 4, "total_time": 1800.0}
FIG67_TINY = {"delays_min": [5, 15], **TINY, "seed": 2}


def run_site_a_sweep(site_a: ResultCache):
    return run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=site_a)


class TestExportImportRoundTrip:
    def test_sweep_round_trips_between_two_sites(self, tmp_path):
        """Sweep at A, export, import at B: B's re-run is fully cache-served."""
        site_a = ResultCache(tmp_path / "site-a")
        first = run_site_a_sweep(site_a)
        assert first.executed == 2

        archive = tmp_path / "site-a.tar.gz"
        export_report = export_cache(site_a, archive)
        assert export_report.total == 2
        assert archive.is_file()

        site_b = ResultCache(tmp_path / "site-b")
        import_report = import_cache(site_b, archive)
        assert import_report.imported == 2
        assert import_report.skipped_mismatch == 0

        second = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=site_b)
        assert second.cache_hits == 2 and second.executed == 0
        assert second.result.render() == first.result.render()

    def test_provenance_travels_with_the_entries(self, tmp_path):
        site_a = ResultCache(tmp_path / "site-a")
        run_site_a_sweep(site_a)
        original = site_a.journal_by_key()

        archive = tmp_path / "site-a.tar.gz"
        export_cache(site_a, archive)
        site_b = ResultCache(tmp_path / "site-b")
        import_cache(site_b, archive)

        imported = site_b.journal_by_key()
        assert set(imported) == set(original)
        for key, entry in imported.items():
            assert entry["host"] == original[key]["host"]  # original computer
            assert entry["via"] == "import:site-a.tar.gz"
            assert entry["code"] == code_version_hash()
            assert entry["experiment"] == "fig6-fig7"

    def test_reimport_skips_existing_entries(self, tmp_path):
        site_a = ResultCache(tmp_path / "site-a")
        run_site_a_sweep(site_a)
        archive = tmp_path / "a.tar.gz"
        export_cache(site_a, archive)
        site_b = ResultCache(tmp_path / "site-b")
        assert import_cache(site_b, archive).imported == 2
        again = import_cache(site_b, archive)
        assert again.imported == 0 and again.skipped_existing == 2

    def test_export_of_empty_cache_is_a_valid_archive(self, tmp_path):
        empty = ResultCache(tmp_path / "empty")
        archive = tmp_path / "empty.tar.gz"
        report = export_cache(empty, archive)
        assert report.total == 0
        imported = import_cache(ResultCache(tmp_path / "dest"), archive)
        assert imported.total == 0


class TestStaleArchiveRejection:
    """Fault injection: archives from out-of-sync sources must be refused."""

    def make_stale_archive(self, tmp_path):
        """An archive whose entries were (per journal) built by other sources."""
        stale_site = ResultCache(tmp_path / "stale-site", code_hash="e" * 64)
        run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=stale_site)
        archive = tmp_path / "stale.tar.gz"
        export_cache(stale_site, archive)
        return archive

    def test_stale_archive_rejected_without_corrupting_local_cache(self, tmp_path):
        archive = self.make_stale_archive(tmp_path)
        local = ResultCache(tmp_path / "local")
        run_experiment("table1", overrides={**TINY, "seed": 1}, jobs=1, cache=local)
        before_entries = local.entry_count()
        before_journal = local.journal_entries()

        with pytest.raises(CacheSyncError, match="different repro sources"):
            import_cache(local, archive)

        assert local.entry_count() == before_entries
        assert local.journal_entries() == before_journal

    def test_allow_mismatch_imports_anyway(self, tmp_path):
        archive = self.make_stale_archive(tmp_path)
        local = ResultCache(tmp_path / "local")
        report = import_cache(local, archive, allow_mismatch=True)
        assert report.imported == 2
        # inert: stale keys can never be produced by local lookups
        resumed = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=local)
        assert resumed.cache_hits == 0

    def test_partially_stale_archive_imports_the_fresh_entries(self, tmp_path):
        site_a = ResultCache(tmp_path / "site-a")
        run_site_a_sweep(site_a)
        # doctor one journal line so one entry claims a foreign code hash
        lines = site_a.journal_path.read_text().splitlines()
        doctored = json.loads(lines[0])
        doctored["code"] = "d" * 64
        site_a.journal_path.write_text(
            "\n".join([json.dumps(doctored), *lines[1:]]) + "\n"
        )
        archive = tmp_path / "mixed.tar.gz"
        export_cache(site_a, archive)

        local = ResultCache(tmp_path / "local")
        report = import_cache(local, archive)
        assert report.imported == 1
        assert report.skipped_mismatch == 1
        assert report.mismatched_keys  # flagged for the operator

    def test_not_an_archive_is_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.tar.gz"
        bogus.write_bytes(b"not a tarball")
        with pytest.raises(CacheSyncError, match="cannot read archive"):
            import_cache(ResultCache(tmp_path / "local"), bogus)

    def test_tarball_without_manifest_is_rejected(self, tmp_path):
        payload = tmp_path / "x.txt"
        payload.write_text("hi")
        plain = tmp_path / "plain.tar.gz"
        with tarfile.open(plain, "w:gz") as tar:
            tar.add(payload, arcname="x.txt")
        with pytest.raises(CacheSyncError, match="no manifest.json"):
            import_cache(ResultCache(tmp_path / "local"), plain)

    def test_missing_source_is_rejected(self, tmp_path):
        with pytest.raises(CacheSyncError, match="archive not found"):
            import_cache(ResultCache(tmp_path / "local"), tmp_path / "nope.tar.gz")


class TestMergeBetweenCacheDirs:
    def test_merge_moves_entries_and_provenance(self, tmp_path):
        site_a = ResultCache(tmp_path / "site-a")
        first = run_site_a_sweep(site_a)
        site_b = ResultCache(tmp_path / "site-b")
        report = merge_caches(site_a.root, site_b)
        assert report.imported == 2 and report.unverified == 0

        resumed = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=site_b)
        assert resumed.cache_hits == 2
        assert resumed.result.render() == first.result.render()
        hosts = {e["host"] for e in site_b.journal_entries()}
        assert hosts == {"local"}  # site A computed everything locally

    def test_import_of_a_directory_merges(self, tmp_path):
        site_a = ResultCache(tmp_path / "site-a")
        run_site_a_sweep(site_a)
        site_b = ResultCache(tmp_path / "site-b")
        report = import_cache(site_b, site_a.root)
        assert report.operation == "merge"
        assert report.imported == 2

    def test_merge_without_journal_counts_unverified(self, tmp_path):
        site_a = ResultCache(tmp_path / "site-a")
        run_site_a_sweep(site_a)
        site_a.journal_path.unlink()  # e.g. rsync'd entries without the journal
        site_b = ResultCache(tmp_path / "site-b")
        report = merge_caches(site_a.root, site_b)
        assert report.imported == 2 and report.unverified == 2

    def test_merge_skips_foreign_code_entries(self, tmp_path):
        stale = ResultCache(tmp_path / "stale", code_hash="e" * 64)
        run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=stale)
        site_b = ResultCache(tmp_path / "site-b")
        with pytest.raises(CacheSyncError, match="different repro sources"):
            merge_caches(stale.root, site_b)
        assert site_b.entry_count() == 0

    def test_merge_into_itself_is_rejected(self, tmp_path):
        site = ResultCache(tmp_path / "site")
        site.root.mkdir(parents=True)
        with pytest.raises(CacheSyncError, match="into itself"):
            merge_caches(site.root, site)

    def test_merge_missing_source_is_rejected(self, tmp_path):
        with pytest.raises(CacheSyncError, match="not found"):
            merge_caches(tmp_path / "nope", ResultCache(tmp_path / "site"))


class TestCacheCli:
    def test_export_import_round_trip_via_cli(self, tmp_path, capsys):
        site_a = tmp_path / "site-a"
        run_experiment(
            "fig6-fig7", overrides=FIG67_TINY, jobs=1, cache=ResultCache(site_a)
        )
        archive = tmp_path / "a.tar.gz"
        assert main(["cache", "export", str(archive), "--cache-dir", str(site_a)]) == 0
        assert "2/2 entries" in capsys.readouterr().out

        site_b = tmp_path / "site-b"
        assert main(["cache", "import", str(archive), "--cache-dir", str(site_b)]) == 0
        out = capsys.readouterr().out
        assert "[cache import]" in out and "2/2 entries" in out
        assert ResultCache(site_b).entry_count() == 2

    def test_merge_via_cli(self, tmp_path, capsys):
        site_a = tmp_path / "site-a"
        run_experiment(
            "table1", overrides={**TINY, "seed": 1}, jobs=1, cache=ResultCache(site_a)
        )
        site_b = tmp_path / "site-b"
        assert main(["cache", "merge", str(site_a), str(site_b)]) == 0
        assert "1/1 entries" in capsys.readouterr().out

    def test_stale_import_via_cli_is_a_clean_error(self, tmp_path):
        stale = ResultCache(tmp_path / "stale", code_hash="e" * 64)
        run_experiment("table1", overrides={**TINY, "seed": 1}, jobs=1, cache=stale)
        archive = tmp_path / "stale.tar.gz"
        export_cache(stale, archive)
        with pytest.raises(SystemExit, match="different repro sources"):
            main(["cache", "import", str(archive), "--cache-dir", str(tmp_path / "b")])


class TestJournalHardening:
    """Two hosts appending into one shared cache dir must not corrupt reads."""

    def test_interleaved_records_on_one_line_are_recovered(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.root.mkdir(parents=True, exist_ok=True)
        a = json.dumps({"key": "a" * 64, "host": "siteA"})
        b = json.dumps({"key": "b" * 64, "host": "siteB"})
        # writer B's line landed inside writer A's missing newline
        cache.journal_path.write_text(a + b + "\n")
        entries = cache.journal_entries()
        assert [e["host"] for e in entries] == ["siteA", "siteB"]

    def test_torn_line_is_skipped_without_losing_neighbours(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.root.mkdir(parents=True, exist_ok=True)
        good = json.dumps({"key": "a" * 64, "host": "siteA"})
        torn = '{"key": "cc", "host": "si'
        cache.journal_path.write_text(f"{good}\n{torn}\n{good}\n")
        entries = cache.journal_entries()
        assert len(entries) == 2
        assert all(e["host"] == "siteA" for e in entries)

    def test_torn_prefix_does_not_mask_a_complete_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.root.mkdir(parents=True, exist_ok=True)
        good = json.dumps({"host": "siteB"})
        cache.journal_path.write_text('{"torn": ' + good + "\n")
        # the torn outer record is unrecoverable, but the embedded complete
        # object (the interleaved second writer) is salvaged
        assert cache.journal_entries() == [{"host": "siteB"}]

    def test_concurrent_appenders_produce_only_intact_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        n_threads, per_thread = 8, 50

        def writer(thread_id: int) -> None:
            for i in range(per_thread):
                cache.journal_append(
                    [{"host": f"t{thread_id}", "i": i, "pad": "x" * 512}]
                )

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        entries = cache.journal_entries()
        assert len(entries) == n_threads * per_thread
        for thread_id in range(n_threads):
            mine = [e["i"] for e in entries if e["host"] == f"t{thread_id}"]
            assert mine == list(range(per_thread))  # per-writer order intact

    def test_record_carries_code_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.record("table1", {"x": 1}, host="w0", elapsed=0.5)
        (entry,) = cache.journal_entries()
        assert entry["code"] == cache.code_hash
        assert entry["host"] == "w0"

    def test_write_failure_releases_lock_and_closes_fd(self, tmp_path, monkeypatch):
        """An os.write that raises mid-line must leave no wedged lock or
        leaked fd behind: the next appender proceeds normally."""
        import os as _os

        cache = ResultCache(tmp_path)
        cache.journal_append([{"host": "ok0"}])

        real_write = _os.write

        def torn_write(fd, blob):
            # write half the line, then fail: simulates ENOSPC mid-record
            real_write(fd, blob[: len(blob) // 2])
            raise OSError("injected: disk full")

        fds_before = len(_os.listdir("/proc/self/fd"))
        monkeypatch.setattr(_os, "write", torn_write)
        cache.journal_append([{"host": "doomed", "pad": "x" * 256}])  # must not raise
        monkeypatch.undo()
        assert len(_os.listdir("/proc/self/fd")) == fds_before  # fd closed

        # the lock was released: a fresh appender is not blocked, and its
        # line is recovered even though it lands after the torn fragment
        cache.journal_append([{"host": "ok1"}])
        hosts = [e["host"] for e in cache.journal_entries()]
        assert "ok0" in hosts and "ok1" in hosts
        assert "doomed" not in hosts  # the torn record is never served

    def test_torn_final_line_from_killed_appender_never_served(self, tmp_path):
        """A crash between write and newline leaves a torn tail; later
        appends land after it and both sides must parse correctly."""
        cache = ResultCache(tmp_path)
        cache.journal_append([{"host": "ok0"}])
        with open(cache.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"host": "torn", "elapsed"')  # killed mid-record
        assert [e["host"] for e in cache.journal_entries()] == ["ok0"]
        cache.journal_append([{"host": "ok1"}])
        hosts = [e["host"] for e in cache.journal_entries()]
        assert hosts == ["ok0", "ok1"]


class TestJournalSharding:
    """journal_shards > 1 splits appends across per-shard flocks while
    journal_entries/journal_by_key still present one merged view."""

    @staticmethod
    def _entry(seed: int, t: float) -> dict:
        key = f"{seed:08x}" + "0" * 56
        return {"key": key, "time": t, "host": f"h{seed}"}

    def test_entries_route_to_distinct_shard_files(self, tmp_path):
        cache = ResultCache(tmp_path, journal_shards=4)
        cache.journal_append([self._entry(s, float(s)) for s in range(8)])
        paths = cache.journal_paths()
        assert len(paths) == 4  # seeds 0..7 mod 4 cover every shard
        assert paths[0] == cache.journal_path  # shard 0 keeps the legacy name

    def test_merged_view_is_time_ordered_across_shards(self, tmp_path):
        cache = ResultCache(tmp_path, journal_shards=4)
        # append in scrambled time order, across different shards
        for seed, t in [(1, 3.0), (2, 1.0), (3, 2.0), (0, 0.5)]:
            cache.journal_append([self._entry(seed, t)])
        hosts = [e["host"] for e in cache.journal_entries()]
        assert hosts == ["h0", "h2", "h3", "h1"]
        assert set(cache.journal_by_key()) == {
            self._entry(s, 0.0)["key"] for s in range(4)
        }

    def test_same_key_always_lands_in_same_shard(self, tmp_path):
        cache = ResultCache(tmp_path, journal_shards=4)
        entry = self._entry(5, 1.0)
        assert cache.journal_shard_path(entry["key"]) == cache.journal_shard_path(
            entry["key"]
        )
        cache.journal_append([entry, {**entry, "time": 2.0}])
        assert len(cache.journal_paths()) == 1  # one shard file touched

    def test_watermark_advances_on_any_shard_append(self, tmp_path):
        cache = ResultCache(tmp_path, journal_shards=4)
        marks = [cache.journal_watermark()]
        for seed in range(4):
            cache.journal_append([self._entry(seed, float(seed))])
            marks.append(cache.journal_watermark())
        assert marks == sorted(marks) and len(set(marks)) == len(marks)

    def test_single_shard_cache_reads_multi_shard_dir(self, tmp_path):
        """A default (journal_shards=1) reader still sees every shard an
        earlier sharded writer produced -- shard count is not persisted."""
        writer = ResultCache(tmp_path, journal_shards=4)
        writer.journal_append([self._entry(s, float(s)) for s in range(8)])
        reader = ResultCache(tmp_path)
        assert len(reader.journal_entries()) == 8
