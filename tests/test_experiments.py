"""Tests for the experiment harness at reduced scale.

Each experiment must produce the paper's qualitative *shape* even in small
runs; the full-scale numbers live in the benchmarks / EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    baseline_comparison,
    clc_delay_sweep,
    cluster1_timer_sweep,
    communication_pattern_sweep,
    gc_period_sweep,
    gc_three_clusters,
    gc_two_clusters,
    message_logging_ablation,
    no_gc_reference,
    replication_degree_sweep,
    table1_message_counts,
    transitive_ddv_ablation,
)

HOUR = 3600.0

# Reduced scale used everywhere in this module: 10x fewer nodes, 1/5 the
# duration -> runs in well under a second each.
SMALL = {"nodes": 10, "total_time": 2 * HOUR}


class TestTable1:
    def test_counts_scale_with_workload(self):
        exp = table1_message_counts(seed=1, **SMALL)
        measured = {(row[0], row[1]): row[2] for row in exp.rows}
        # intra-cluster flows dominate by ~an order of magnitude
        assert measured[("Cluster 0", "Cluster 0")] > 10 * measured[("Cluster 0", "Cluster 1")]
        assert measured[("Cluster 1", "Cluster 1")] > 10 * measured[("Cluster 1", "Cluster 0")]

    def test_directional_asymmetry(self):
        exp = table1_message_counts(seed=1, **SMALL)
        measured = {(row[0], row[1]): row[2] for row in exp.rows}
        # 0->1 carries ~13x more than 1->0 in the paper
        assert measured[("Cluster 0", "Cluster 1")] > measured[("Cluster 1", "Cluster 0")]

    def test_render_contains_table(self):
        exp = table1_message_counts(seed=1, **SMALL)
        text = exp.render()
        assert "Cluster 0" in text and "Paper" in text


class TestFig6Fig7:
    @pytest.fixture(scope="class")
    def sweep(self):
        return clc_delay_sweep(delays_min=[5, 15, 30, 60], seed=2, **SMALL)

    def test_unforced_decreases_with_delay(self, sweep):
        unforced = sweep.series["c0 unforced"]
        assert unforced[0] > unforced[-1]
        assert all(a >= b for a, b in zip(unforced, unforced[1:]))

    def test_unforced_tracks_total_over_delay(self, sweep):
        for delay, unforced in zip(sweep.xs, sweep.series["c0 unforced"]):
            upper = (2 * HOUR) / (delay * 60.0)
            assert unforced <= upper + 1

    def test_forced_c0_roughly_constant(self, sweep):
        """Fig. 6: forced CLCs in c0 are caused by the sparse 1->0 flow and
        do not scale with the timer."""
        forced = sweep.series["c0 forced"]
        assert max(forced) - min(forced) <= 2

    def test_c1_never_unforced(self, sweep):
        assert all(v == 0 for v in sweep.series["c1 unforced"])

    def test_c1_forced_proportional_to_c0_clcs(self, sweep):
        """Fig. 7: cluster 1's forced CLCs follow cluster 0's CLC count."""
        c0_total = [
            u + f + 1
            for u, f in zip(sweep.series["c0 unforced"], sweep.series["c0 forced"])
        ]
        c1_forced = sweep.series["c1 forced"]
        # at this scale only a handful of 0->1 messages exist, so we check
        # the weak form of Fig. 7's proportionality: non-increasing along
        # the sweep and bounded by cluster 0's CLC count (each c0 CLC can
        # force at most one c1 CLC per subsequent message)
        assert c1_forced[0] >= c1_forced[-1]
        for total, forced in zip(c0_total, c1_forced):
            assert forced <= total + 2


class TestFig8:
    def test_c0_insensitive_to_c1_timer(self):
        exp = cluster1_timer_sweep(delays_min=[15, 30, 60], seed=3, **SMALL)
        c0_total = exp.series["c0 total"]
        assert max(c0_total) - min(c0_total) <= 2
        c1_total = exp.series["c1 total"]
        assert c1_total[0] >= c1_total[-1]


class TestFig9:
    @pytest.fixture(scope="class")
    def sweep(self):
        return communication_pattern_sweep(
            message_counts=[10, 60, 110], seed=4, **SMALL
        )

    def test_c0_forced_grows_fast(self, sweep):
        forced = sweep.series["c0 forced"]
        assert forced[-1] > forced[0]
        assert forced[-1] >= 3 * max(1, forced[0])

    def test_total_grows_with_traffic(self, sweep):
        totals = sweep.series["c0 total"]
        assert totals[-1] > totals[0]

    def test_measured_messages_track_targets(self, sweep):
        # x axis is the target count at paper scale; measured counts scale
        # by (10 nodes * 2h) / (100 nodes * 10h) = 1/50... times 10/100
        # nodes and 2/10 hours -> expect ~target * 0.02, loosely checked
        for target, measured in zip(sweep.xs, sweep.series["msgs 1->0"]):
            assert measured <= target


class TestTables2And3:
    def test_gc_two_clusters_shape(self):
        exp = gc_two_clusters(gc_period=0.5 * HOUR, seed=5, **SMALL)
        assert len(exp.rows) >= 3
        for row in exp.rows:
            _, b0, a0, b1, a1 = row
            assert a0 <= b0 and a1 <= b1
            assert a0 <= 3 and a1 <= 3

    def test_gc_three_clusters_shape(self):
        exp = gc_three_clusters(gc_period=0.5 * HOUR, seed=5, **SMALL)
        assert len(exp.rows) >= 3
        for row in exp.rows:
            for before, after in zip(row[1::2], row[2::2]):
                assert after <= before
                assert after <= 3

    def test_no_gc_reference_accumulates(self):
        exp = no_gc_reference(seed=5, **SMALL)
        for _cluster, stored, states, _peak in exp.rows:
            assert stored >= 4
            assert states == 2 * stored  # neighbour replication doubles

    def test_distributed_gc_variant(self):
        exp = gc_two_clusters(gc_period=0.5 * HOUR, seed=5, gc_mode="distributed", **SMALL)
        assert len(exp.rows) >= 3


class TestAblations:
    def test_transitive_never_worse(self):
        exp = transitive_ddv_ablation(nodes_per_stage=8, total_time=2 * HOUR, seed=6)
        by_protocol = {row[0]: row[1] for row in exp.rows}
        assert by_protocol["hc3i-transitive"] <= by_protocol["hc3i"]
        assert by_protocol["cic-always"] >= by_protocol["hc3i"]

    def test_cic_always_forces_per_message(self):
        exp = transitive_ddv_ablation(nodes_per_stage=8, total_time=2 * HOUR, seed=6)
        rows = {row[0]: row for row in exp.rows}
        assert rows["cic-always"][1] == rows["cic-always"][3]  # forced == msgs

    def test_logging_ablation_scope(self):
        exp = message_logging_ablation(nodes=6, total_time=2 * HOUR, seed=7)
        with_log, without_log = exp.rows
        # without logs at least as many clusters roll back per failure
        assert without_log[3] >= with_log[3]
        # and only the with-log variant replays
        assert with_log[4] >= 0 and without_log[4] == 0

    def test_baseline_comparison_rows(self):
        exp = baseline_comparison(nodes=6, total_time=2 * HOUR, seed=8)
        protocols = [row[0] for row in exp.rows]
        assert protocols == [
            "hc3i", "global-coordinated", "independent", "pessimistic-log"
        ]
        by_protocol = {row[0]: row for row in exp.rows}
        # global coordination always rolls both clusters back
        assert by_protocol["global-coordinated"][3] == 2.0
        # pessimistic logging logs bytes, others' sender logs are smaller
        assert by_protocol["pessimistic-log"][5] > by_protocol["global-coordinated"][5]

    def test_gc_period_tradeoff(self):
        exp = gc_period_sweep(periods_h=[0.5, 2, None], nodes=10, total_time=2 * HOUR, seed=9)
        peaks = [row[1] for row in exp.rows]
        # less frequent GC -> (weakly) higher peak storage; none -> highest
        assert peaks[0] <= peaks[-1]
        removed = [row[4] for row in exp.rows]
        assert removed[-1] == 0  # GC off removes nothing

    def test_replication_sweep(self):
        exp = replication_degree_sweep(degrees=(0, 1, 2), nodes=6, total_time=HOUR, seed=10)
        tolerated = [row[1] for row in exp.rows]
        assert tolerated == [0, 1, 2]
        replicas = [row[4] for row in exp.rows]
        assert replicas[0] == 0
        assert replicas[1] > 0
        assert replicas[2] == 2 * replicas[1]
