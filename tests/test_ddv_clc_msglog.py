"""Unit tests for the protocol data structures: DDV, CLC store, message log."""

import pytest

from repro.core.clc import CheckpointCause, CheckpointRecord, ClcStore
from repro.core.ddv import DDV
from repro.core.msglog import MessageLog
from repro.network.message import Message, MessageKind, NodeId


class TestDDV:
    def test_zero(self):
        d = DDV.zero(3)
        assert list(d) == [0, 0, 0]
        assert len(d) == 3

    def test_zero_invalid(self):
        with pytest.raises(ValueError):
            DDV.zero(0)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            DDV([1, -1])

    def test_equality_with_tuple(self):
        assert DDV([1, 2]) == (1, 2)
        assert DDV([1, 2]) == DDV((1, 2))
        assert DDV([1, 2]) != DDV([2, 1])

    def test_hashable(self):
        assert len({DDV([1, 2]), DDV([1, 2])}) == 1

    def test_with_entry(self):
        d = DDV([1, 2, 3]).with_entry(1, 9)
        assert d == (1, 9, 3)

    def test_merged_takes_maxima(self):
        d = DDV([5, 2, 3]).merged({0: 1, 1: 7})
        assert d == (5, 7, 3)  # entry 0 not lowered

    def test_merged_max_elementwise(self):
        assert DDV([1, 5]).merged_max(DDV([3, 2])) == (3, 5)

    def test_merged_max_size_mismatch(self):
        with pytest.raises(ValueError):
            DDV([1]).merged_max(DDV([1, 2]))

    def test_increased_entries(self):
        mine = DDV([1, 5, 0])
        theirs = DDV([2, 3, 4])
        assert mine.increased_entries(theirs) == {0: 2, 2: 4}
        assert mine.increased_entries(theirs, skip=0) == {2: 4}

    def test_dominates(self):
        assert DDV([2, 3]).dominates(DDV([1, 3]))
        assert not DDV([2, 3]).dominates(DDV([3, 3]))

    def test_immutable(self):
        d = DDV([1, 2])
        with pytest.raises(TypeError):
            d[0] = 5  # type: ignore[index]


def record(cluster, sn, ddv, cause=CheckpointCause.TIMER, time=0.0):
    return CheckpointRecord(
        sn=sn, ddv=DDV(ddv), time=time, cause=cause, cluster=cluster
    )


class TestCheckpointRecord:
    def test_own_entry_invariant(self):
        with pytest.raises(ValueError):
            record(0, 2, [1, 0])  # ddv[0] != sn

    def test_cause_flags(self):
        assert CheckpointCause.FORCED.forced
        assert not CheckpointCause.TIMER.forced
        assert CheckpointCause.TIMER.unforced
        assert not CheckpointCause.INITIAL.unforced

    def test_forced_property(self):
        assert record(0, 1, [1, 0], CheckpointCause.FORCED).forced


class TestClcStore:
    def make_store(self):
        store = ClcStore(0)
        store.add(record(0, 1, [1, 0]))
        store.add(record(0, 2, [2, 0]))
        store.add(record(0, 3, [3, 2]))
        store.add(record(0, 4, [4, 2]))
        return store

    def test_add_and_last(self):
        store = self.make_store()
        assert len(store) == 4
        assert store.last().sn == 4
        assert store.sns() == [1, 2, 3, 4]

    def test_add_wrong_cluster_rejected(self):
        store = ClcStore(0)
        with pytest.raises(ValueError):
            store.add(record(1, 1, [0, 1]))

    def test_non_increasing_sn_rejected(self):
        store = self.make_store()
        with pytest.raises(ValueError):
            store.add(record(0, 4, [4, 2]))

    def test_empty_last_raises(self):
        with pytest.raises(LookupError):
            ClcStore(0).last()

    def test_rollback_target_oldest_with_entry(self):
        store = self.make_store()
        # alert from cluster 1 with SN 1: oldest CLC with ddv[1] >= 1 is sn 3
        target = store.find_rollback_target(faulty=1, alert_sn=1)
        assert target is not None and target.sn == 3

    def test_rollback_target_none_when_no_dependency(self):
        store = self.make_store()
        assert store.find_rollback_target(faulty=1, alert_sn=3) is None

    def test_discard_after(self):
        store = self.make_store()
        target = store.records[1]  # sn 2
        removed = store.discard_after(target)
        assert removed == 2
        assert store.sns() == [1, 2]
        assert store.discarded_by_rollback == 2

    def test_discard_after_foreign_record_raises(self):
        store = self.make_store()
        with pytest.raises(LookupError):
            store.discard_after(record(0, 99, [99, 0]))

    def test_prune_removes_older(self):
        store = self.make_store()
        removed = store.prune(min_sn=3)
        assert removed == 2
        assert store.sns() == [3, 4]
        assert store.removed_by_gc == 2

    def test_prune_never_removes_newest(self):
        store = self.make_store()
        removed = store.prune(min_sn=100)
        assert removed == 3
        assert store.sns() == [4]

    def test_prune_noop_when_bound_low(self):
        store = self.make_store()
        assert store.prune(min_sn=0) == 0
        assert len(store) == 4

    def test_prune_single_record_kept(self):
        store = ClcStore(0)
        store.add(record(0, 1, [1, 0]))
        assert store.prune(min_sn=10) == 0
        assert len(store) == 1

    def test_ddv_list(self):
        store = self.make_store()
        assert store.ddv_list()[0] == (1, (1, 0))
        assert store.ddv_list()[-1] == (4, (4, 2))


def make_msg(src=NodeId(0, 0), dst=NodeId(1, 0), size=100):
    return Message(src=src, dst=dst, kind=MessageKind.APP, size=size)


class TestMessageLog:
    def test_add_and_ack(self):
        log = MessageLog(0)
        msg = make_msg()
        entry = log.add(msg, send_sn=3)
        assert len(log) == 1
        assert entry.ack_sn is None
        assert log.ack(msg.msg_id, 5)
        assert entry.ack_sn == 5

    def test_ack_unknown_returns_false(self):
        assert not MessageLog(0).ack(12345, 1)

    def test_intra_cluster_rejected(self):
        with pytest.raises(ValueError):
            MessageLog(0).add(make_msg(dst=NodeId(0, 1)), send_sn=1)

    def test_wrong_cluster_rejected(self):
        with pytest.raises(ValueError):
            MessageLog(1).add(make_msg(), send_sn=1)

    def test_replay_rule_matches_paper(self):
        """§3.4: resend iff acked with SN > alert SN or not acked at all."""
        log = MessageLog(0)
        m_old = make_msg()
        m_lost = make_msg()
        m_unacked = make_msg()
        log.add(m_old, send_sn=1)
        log.add(m_lost, send_sn=2)
        log.add(m_unacked, send_sn=3)
        log.ack(m_old.msg_id, 2)
        log.ack(m_lost.msg_id, 6)
        to_replay = log.entries_to_replay(dest_cluster=1, alert_sn=4)
        ids = {e.msg.msg_id for e in to_replay}
        assert ids == {m_lost.msg_id, m_unacked.msg_id}

    def test_replay_filters_by_destination(self):
        log = MessageLog(0)
        to_1 = make_msg(dst=NodeId(1, 0))
        to_2 = make_msg(dst=NodeId(2, 0))
        log.add(to_1, send_sn=1)
        log.add(to_2, send_sn=1)
        assert {e.msg.msg_id for e in log.entries_to_replay(2, alert_sn=0)} == {
            to_2.msg_id
        }

    def test_drop_sent_after_rollback(self):
        log = MessageLog(0)
        keep = make_msg()
        drop = make_msg()
        log.add(keep, send_sn=2)
        log.add(drop, send_sn=3)
        assert log.drop_sent_after(restored_sn=3) == 1
        assert log.get(keep.msg_id) is not None
        assert log.get(drop.msg_id) is None
        assert log.dropped_by_rollback == 1

    def test_gc_prune_rule(self):
        """§3.5: remove entries acked below the receiver's smallest SN."""
        log = MessageLog(0)
        old = make_msg()
        recent = make_msg()
        unacked = make_msg()
        log.add(old, send_sn=1)
        log.add(recent, send_sn=2)
        log.add(unacked, send_sn=3)
        log.ack(old.msg_id, 2)
        log.ack(recent.msg_id, 7)
        removed = log.prune(min_sns=[0, 5])  # receiver cluster 1 bound = 5
        assert removed == 1
        assert log.get(old.msg_id) is None
        assert log.get(recent.msg_id) is not None
        assert log.get(unacked.msg_id) is not None
        assert log.removed_by_gc == 1

    def test_gc_keeps_ack_equal_to_bound(self):
        """The paper prunes strictly below the bound (conservative)."""
        log = MessageLog(0)
        msg = make_msg()
        log.add(msg, send_sn=1)
        log.ack(msg.msg_id, 5)
        assert log.prune(min_sns=[0, 5]) == 0
        assert len(log) == 1

    def test_bytes_and_max_entries(self):
        log = MessageLog(0)
        log.add(make_msg(size=100), send_sn=1)
        log.add(make_msg(size=250), send_sn=1)
        assert log.bytes == 350
        assert log.max_entries == 2
        log.drop_sent_after(0)
        assert log.max_entries == 2  # high-water mark persists
