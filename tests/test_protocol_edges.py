"""Edge-of-protocol tests: failures inside 2PC windows, partial DDV
coverage, recovery-window arrivals, FIFO properties."""

from hypothesis import given, settings, strategies as st

from repro.analysis.consistency import check_invariants
from repro.core.hc3i import Piggyback
from repro.network.message import Message, MessageKind, NodeId
from tests.conftest import make_federation


class TestFailureDuringRound:
    def test_crash_mid_collecting_aborts_round(self):
        """A node dies between request and ack: the round stalls, the
        rollback aborts it, and checkpointing resumes afterwards."""
        fed = make_federation(nodes=4, clc_period=None, total_time=400.0)
        fed.start()
        fed.sim.run(until=10.0)
        coordinator = fed.protocol.coordinators[0]
        # start a round and crash a participant in the same instant: its
        # ack is never sent and the detector reports the crash later
        fed.protocol.request_checkpoint(0)
        victim = fed.node(NodeId(0, 2))
        fed.inject_failure(victim.id)
        fed.sim.run(until=10.3)
        assert coordinator.phase == coordinator.COLLECTING  # stalled
        fed.sim.run(until=60.0)
        assert coordinator.phase == coordinator.IDLE
        # a fresh checkpoint succeeds after recovery
        sn_before = fed.protocol.cluster_states[0].sn
        fed.protocol.request_checkpoint(0)
        fed.sim.run(until=120.0)
        assert fed.protocol.cluster_states[0].sn == sn_before + 1
        assert check_invariants(fed) == []

    def test_crash_of_coordinator_mid_round(self):
        fed = make_federation(nodes=3, clc_period=None, total_time=400.0)
        fed.start()
        fed.sim.run(until=10.0)
        fed.protocol.request_checkpoint(0)
        leader = fed.node(NodeId(0, 0))
        fed.inject_failure(leader.id)
        fed.sim.run(until=100.0)
        assert leader.up
        assert fed.protocol.coordinators[0].phase == "idle"
        assert check_invariants(fed) == []

    def test_frozen_sends_discarded_by_rollback(self):
        """App messages queued during a round die with the rollback (their
        epoch was erased); re-execution regenerates traffic."""
        fed = make_federation(nodes=2, clc_period=None, total_time=400.0)
        fed.start()
        fed.sim.run(until=10.0)
        agent = fed.node(NodeId(0, 1)).agent
        agent.in_round = True
        agent.app_send(NodeId(0, 0), 64, None)
        assert len(agent.queued_out) == 1
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=60.0)
        assert agent.queued_out == []


class TestPartialDdvCoverage:
    def test_pending_multi_entry_waits_for_full_coverage(self):
        """In transitive mode a message may need several entries raised;
        it is delivered only once the committed DDV covers them all."""
        fed = make_federation(
            n_clusters=3, nodes=2, clc_period=None, total_time=400.0,
            protocol_options={"mode": "ddv"},
        )
        fed.start()
        fed.sim.run(until=5.0)
        agent = fed.node(NodeId(2, 0)).agent
        cs = fed.protocol.cluster_states[2]
        msg = Message(
            src=NodeId(1, 0), dst=NodeId(2, 0), kind=MessageKind.APP, size=64,
            piggyback=Piggyback(sn=1, epoch=0, ddv=(1, 1, 0)),
        )
        agent.handle_inter(msg)
        assert len(agent.pending_force) == 1
        assert agent.pending_force[0].updates == {0: 1, 1: 1}
        fed.sim.run(until=60.0)
        # the forced CLC committed with both entries; message delivered
        assert msg.msg_id in cs.delivered_ids
        assert cs.ddv[0] == 1 and cs.ddv[1] == 1

    def test_evaluate_pending_keeps_uncovered_entries(self):
        fed = make_federation(
            n_clusters=3, nodes=2, clc_period=None, total_time=400.0,
            protocol_options={"mode": "ddv"},
        )
        fed.start()
        fed.sim.run(until=5.0)
        agent = fed.node(NodeId(2, 0)).agent
        cs = fed.protocol.cluster_states[2]
        from repro.core.hc3i import PendingDelivery

        msg = Message(
            src=NodeId(1, 0), dst=NodeId(2, 0), kind=MessageKind.APP, size=64,
            piggyback=Piggyback(sn=9, epoch=0, ddv=(9, 9, 0)),
        )
        agent.pending_force.append(
            PendingDelivery(msg=msg, updates={0: 9, 1: 9}, ack_sn=2, created_sn=1)
        )
        agent.evaluate_pending()  # DDV still (0,0,1): nothing covered
        assert len(agent.pending_force) == 1
        assert msg.msg_id not in cs.delivered_ids


class TestRecoveryWindowArrivals:
    def test_arrival_during_recovery_deferred_then_processed(self):
        fed = make_federation(nodes=2, clc_period=None, total_time=400.0)
        fed.start()
        fed.sim.run(until=10.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=10.6)  # detected; recovery window open
        cs = fed.protocol.cluster_states[1]
        assert cs.recovering
        agent = fed.node(NodeId(1, 0)).agent
        msg = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP, size=64,
            piggyback=Piggyback(sn=1, epoch=0),
        )
        agent.on_receive(msg)
        assert msg in agent.deferred_in
        fed.sim.run(until=100.0)
        assert msg.msg_id in cs.delivered_ids
        assert check_invariants(fed) == []


class TestFifoProperty:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=200_000),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_order_for_any_size_sequence(self, sizes):
        from repro.network.fabric import Fabric
        from repro.network.topology import two_cluster_topology
        from repro.sim.kernel import Simulator
        from repro.sim.stats import StatsRegistry

        sim = Simulator()
        topo = two_cluster_topology(nodes=1)
        fabric = Fabric(sim, topo, StatsRegistry(lambda: sim.now))
        received = []
        fabric.register(NodeId(0, 0), lambda m: None)
        fabric.register(NodeId(1, 0), lambda m: received.append(m.payload["i"]))
        for i, size in enumerate(sizes):
            fabric.send(
                Message(
                    src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP,
                    size=size, payload={"i": i},
                )
            )
        sim.run()
        assert received == list(range(len(sizes)))
