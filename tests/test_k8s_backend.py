"""Tests for the Kubernetes batch backend.

Two stub levels, mirroring the SLURM backend's test strategy:

* :class:`conftest.InMemoryK8sTransport` -- a pure-python control plane
  that executes completion indices in-process, for fast unit coverage of
  Job batching, polling, fault handling, and the runner's requeue path.
* ``tools/stub_k8s.py`` behind ``$REPRO_KUBECTL_COMMAND`` -- a subprocess
  mini-kubectl driven through the *real* :class:`K8sCliTransport`
  (``create -f ... -o name``, pod-list JSON parsing, container command
  execution), for end-to-end coverage without a cluster anywhere.
"""

from __future__ import annotations

import json
import sys

import pytest

from conftest import REPO_ROOT, InMemoryK8sTransport, make_k8s_backend
from repro.cli import main
from repro.experiments.backends import (
    BackendUnavailableError,
    K8sCliTransport,
    KubernetesBackend,
    PointTask,
    RemoteCodeMismatchError,
    RemotePointError,
    WorkerLostError,
)
from repro.experiments.backends.k8s import (
    default_k8s_spool_dir,
    default_kubectl_command,
)
from repro.experiments.registry import canonical_params
from repro.experiments.runner import run_experiment

TINY = {"nodes": 4, "total_time": 1800.0}
FIG67_TINY = {"delays_min": [5, 15], **TINY, "seed": 2}


@pytest.fixture
def stub_k8s_env(tmp_path, monkeypatch):
    """Route K8sCliTransport at tools/stub_k8s.py; returns the spool dir.

    Also exports PYTHONPATH to the environment the stub's pods inherit --
    the moral equivalent of the container image shipping the sources
    (pytest's ``pythonpath = ["src"]`` is in-process only).
    """
    monkeypatch.setenv("REPRO_K8S_STUB_STATE", str(tmp_path / "stub-state.json"))
    monkeypatch.setenv(
        "REPRO_KUBECTL_COMMAND", f"{sys.executable} {REPO_ROOT / 'tools' / 'stub_k8s.py'}"
    )
    import os

    existing = os.environ.get("PYTHONPATH")
    src = str(REPO_ROOT / "src")
    monkeypatch.setenv("PYTHONPATH", f"{src}:{existing}" if existing else src)
    spool = tmp_path / "spool"
    return spool


def submit_one(backend: KubernetesBackend, task: PointTask, timeout: float = 30.0):
    future = backend.submit(task)
    backend.flush()
    return future.result(timeout=timeout)


class TestInMemoryTransport:
    def test_matches_jobs1_byte_identically(self, tmp_path):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        transport = InMemoryK8sTransport()
        backend = make_k8s_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.result.series == serial.result.series
        assert report.backend == "k8s"
        assert sum(report.host_counts.values()) == 2
        assert all(host.startswith("k8s:hc3i-") for host in report.host_counts)

    def test_burst_is_batched_into_one_indexed_job(self, tmp_path):
        """All cache-missing points of one sweep go out as ONE k8s Job."""
        transport = InMemoryK8sTransport()
        backend = make_k8s_backend(tmp_path / "spool", transport)
        try:
            run_experiment(
                "fig6-fig7",
                overrides={**TINY, "delays_min": [5, 15, 30], "seed": 2},
                backend=backend,
            )
        finally:
            backend.shutdown()
        assert transport.seq == 1  # one Job, three completion indices
        name = transport.job_names[1]
        assert transport.jobs[name] == {0: "SUCCEEDED", 1: "SUCCEEDED", 2: "SUCCEEDED"}

    def test_evicted_pod_is_requeued_on_a_fresh_job(self, tmp_path):
        """A mid-sweep node-pressure eviction must not lose the point."""
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)

        def evict_first_pod_of_first_job(job_seq, index, job):
            return "EVICTED" if (job_seq, index) == (1, 0) else None

        transport = InMemoryK8sTransport(fault=evict_first_pod_of_first_job)
        backend = make_k8s_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 1
        assert transport.seq == 2  # the requeued point went out as a fresh Job

    def test_whole_job_failure_requeues_every_point(self, tmp_path):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        transport = InMemoryK8sTransport(
            fault=lambda job_seq, index, job: "FAILED" if job_seq == 1 else None
        )
        backend = make_k8s_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 2
        assert all(host.startswith("k8s:") for host in report.host_counts)

    def test_deadline_exceeded_is_a_retryable_loss(self, tmp_path):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        transport = InMemoryK8sTransport(
            fault=lambda job_seq, index, job: (
                "DEADLINEEXCEEDED" if (job_seq, index) == (1, 1) else None
            )
        )
        backend = make_k8s_backend(tmp_path / "spool", transport)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 1

    def test_retry_budget_exhaustion_raises_sweep_error(self, tmp_path):
        from repro.experiments.runner import SweepError

        transport = InMemoryK8sTransport(fault=lambda *a: "FAILED")
        backend = make_k8s_backend(tmp_path / "spool", transport)
        try:
            with pytest.raises(SweepError, match="giving up"):
                run_experiment(
                    "table1",
                    overrides={**TINY, "seed": 1},
                    backend=backend,
                    max_retries=2,
                )
        finally:
            backend.shutdown()

    def test_point_error_is_not_retried(self, tmp_path):
        backend = make_k8s_backend(tmp_path / "spool")
        try:
            task = PointTask(
                experiment="does-not-exist", params={"x": 1}, fn=canonical_params
            )
            with pytest.raises(RemotePointError, match="does-not-exist"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_code_mismatch_is_refused(self, tmp_path):
        class LiarTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                self.seq += 1
                name = f"liar-{self.seq}"
                for i in range(n_tasks):
                    (job_dir / "results" / f"{i}.json").write_text(
                        json.dumps(
                            {"ok": True, "code_hash": "f" * 64, "elapsed": 0.0, "pickle": ""}
                        )
                    )
                self.jobs[name] = dict.fromkeys(range(n_tasks), "SUCCEEDED")
                self.job_names[self.seq] = name
                return name

        backend = make_k8s_backend(tmp_path / "spool", LiarTransport())
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(RemoteCodeMismatchError, match="different repro sources"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_garbled_result_file_is_a_worker_loss(self, tmp_path):
        class GarblerTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                self.seq += 1
                name = f"garbler-{self.seq}"
                for i in range(n_tasks):
                    (job_dir / "results" / f"{i}.json").write_text("{truncat")
                self.jobs[name] = dict.fromkeys(range(n_tasks), "SUCCEEDED")
                self.job_names[self.seq] = name
                return name

        backend = make_k8s_backend(tmp_path / "spool", GarblerTransport())
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="garbled result file"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_vanished_pod_is_lost_after_unknown_grace(self, tmp_path):
        class AmnesiacTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                self.seq += 1
                return f"amnesiac-{self.seq}"  # never runs or remembers anything

        backend = make_k8s_backend(
            tmp_path / "spool", AmnesiacTransport(), unknown_grace=3
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="vanished"):
                submit_one(backend, task, timeout=30.0)
        finally:
            backend.shutdown()

    def test_succeeded_without_result_file_is_lost(self, tmp_path):
        class NoOutputTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                self.seq += 1
                name = f"silent-{self.seq}"
                self.jobs[name] = dict.fromkeys(range(n_tasks), "SUCCEEDED")
                self.job_names[self.seq] = name
                return name

        backend = make_k8s_backend(
            tmp_path / "spool", NoOutputTransport(), completed_grace=2
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="completed without a result"):
                submit_one(backend, task)
        finally:
            backend.shutdown()

    def test_point_timeout_cancels_the_job(self, tmp_path):
        class StuckTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                self.seq += 1
                name = f"stuck-{self.seq}"
                self.jobs[name] = dict.fromkeys(range(n_tasks), "RUNNING")
                self.job_names[self.seq] = name
                return name

        transport = StuckTransport()
        backend = make_k8s_backend(tmp_path / "spool", transport, point_timeout=0.05)
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(WorkerLostError, match="no result within"):
                submit_one(backend, task)
            # k8s has no per-index cancel: the whole Job was deleted
            assert transport.job_names[1] in transport.cancelled
        finally:
            backend.shutdown()

    def test_failed_submission_is_a_retryable_worker_loss(self, tmp_path):
        class QuotaTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                if self.seq == 0:
                    self.seq += 1
                    raise WorkerLostError("k8s", "kubectl create exit 1: quota exceeded")
                return super().submit(job_dir, spec, n_tasks)

        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = make_k8s_backend(tmp_path / "spool", QuotaTransport())
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 2

    def test_unreachable_control_plane_aborts_the_sweep(self, tmp_path):
        class NoClusterTransport(InMemoryK8sTransport):
            def submit(self, job_dir, spec, n_tasks):
                raise BackendUnavailableError("cannot launch kubectl: no such file")

        backend = make_k8s_backend(tmp_path / "spool", NoClusterTransport())
        try:
            with pytest.raises(BackendUnavailableError, match="kubectl"):
                run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)
        finally:
            backend.shutdown()

    def test_unwritable_spool_fails_the_sweep_instead_of_hanging(self):
        """A bad --spool path must surface as a sweep failure, not a hang."""
        from pathlib import Path

        from repro.experiments.runner import SweepError

        backend = make_k8s_backend(Path("/dev/null/not-a-dir"))
        try:
            with pytest.raises(SweepError, match="giving up"):
                run_experiment(
                    "table1",
                    overrides={**TINY, "seed": 1},
                    backend=backend,
                    max_retries=1,
                )
        finally:
            backend.shutdown()

    def test_successful_job_spool_is_cleaned_up(self, tmp_path):
        spool = tmp_path / "spool"
        transport = InMemoryK8sTransport()
        backend = make_k8s_backend(spool, transport)
        try:
            run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)
        finally:
            backend.shutdown()
        assert not list(spool.rglob("job-*")), "job dirs should be removed on success"

    def test_failed_job_spool_is_kept_for_post_mortem(self, tmp_path):
        spool = tmp_path / "spool"
        transport = InMemoryK8sTransport(
            fault=lambda job_seq, index, job: "FAILED" if job_seq == 1 else None
        )
        backend = make_k8s_backend(spool, transport)
        try:
            run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)
        finally:
            backend.shutdown()
        kept = [p.name for p in spool.rglob("job-*") if p.is_dir()]
        assert "job-0001" in kept  # the failed Job's spool survives


class TestManifestRendering:
    def make_backend(self, tmp_path, **kwargs):
        return KubernetesBackend(
            transport=InMemoryK8sTransport(),
            spool=tmp_path,
            python="/opt/py/bin/python3",
            cwd="/srv/hc3i repro",  # space: quoting must hold
            pythonpath="src",
            **kwargs,
        )

    def test_manifest_is_an_indexed_job(self, tmp_path):
        backend = self.make_backend(tmp_path, namespace="sweeps", image="repro:latest")
        manifest = backend._render_manifest(tmp_path / "sweep-1-a" / "job-0001", 7)
        try:
            assert manifest["apiVersion"] == "batch/v1"
            assert manifest["kind"] == "Job"
            assert manifest["metadata"]["name"] == "hc3i-sweep-1-a-job-0001"
            assert manifest["metadata"]["namespace"] == "sweeps"
            spec = manifest["spec"]
            assert spec["completionMode"] == "Indexed"
            assert spec["completions"] == 7
            assert spec["parallelism"] == 7
            assert spec["backoffLimit"] == 0  # retry belongs to the runner
            pod = spec["template"]["spec"]
            assert pod["restartPolicy"] == "Never"
            container = pod["containers"][0]
            assert container["image"] == "repro:latest"
        finally:
            backend.shutdown()

    def test_pod_script_runs_the_wire_worker(self, tmp_path):
        backend = self.make_backend(tmp_path)
        manifest = backend._render_manifest(tmp_path / "sweep-1-a" / "job-0001", 2)
        try:
            command = manifest["spec"]["template"]["spec"]["containers"][0]["command"]
            assert command[:2] == ["/bin/bash", "-c"]
            script = command[2]
            assert "cd '/srv/hc3i repro'" in script
            assert "export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}" in script
            assert '"$JOB_COMPLETION_INDEX".json' in script
            assert "/opt/py/bin/python3 -m repro.experiments.remote_worker" in script
            assert '&& mv "$out.tmp" "$out"' in script
        finally:
            backend.shutdown()

    def test_spool_and_cwd_are_mounted(self, tmp_path):
        backend = self.make_backend(tmp_path)
        manifest = backend._render_manifest(tmp_path / "sweep-1-a" / "job-0001", 1)
        try:
            pod = manifest["spec"]["template"]["spec"]
            mounted = {v["hostPath"]["path"] for v in pod["volumes"]}
            assert str(tmp_path) in mounted  # the spool
            assert "/srv/hc3i repro" in mounted  # the checkout
            mount_paths = {m["mountPath"] for m in pod["containers"][0]["volumeMounts"]}
            assert mounted == mount_paths  # mounted at identical paths
        finally:
            backend.shutdown()

    def test_cwd_sharing_a_string_prefix_with_the_spool_is_still_mounted(self, tmp_path):
        """'/mnt/share-code' is not under '/mnt/share': a sibling that merely
        shares a string prefix with the spool needs its own mount."""
        spool = tmp_path / "share"
        sibling = tmp_path / "share-code"
        backend = KubernetesBackend(
            transport=InMemoryK8sTransport(), spool=spool, cwd=str(sibling)
        )
        manifest = backend._render_manifest(spool / "sweep-1-a" / "job-0001", 1)
        try:
            pod = manifest["spec"]["template"]["spec"]
            mounted = {v["hostPath"]["path"] for v in pod["volumes"]}
            assert mounted == {str(spool), str(sibling)}
        finally:
            backend.shutdown()

    def test_cwd_inside_the_spool_is_not_mounted_twice(self, tmp_path):
        backend = KubernetesBackend(
            transport=InMemoryK8sTransport(),
            spool=tmp_path,
            cwd=str(tmp_path / "checkout"),
        )
        manifest = backend._render_manifest(tmp_path / "sweep-1-a" / "job-0001", 1)
        try:
            pod = manifest["spec"]["template"]["spec"]
            assert [v["hostPath"]["path"] for v in pod["volumes"]] == [str(tmp_path)]
        finally:
            backend.shutdown()

    def test_default_command_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KUBECTL_COMMAND", "python /x/stub.py")
        assert default_kubectl_command() == ("python", "/x/stub.py")
        monkeypatch.delenv("REPRO_KUBECTL_COMMAND")
        assert default_kubectl_command() == ("kubectl",)

    def test_default_spool_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_K8S_SPOOL", str(tmp_path / "sp"))
        assert default_k8s_spool_dir() == tmp_path / "sp"

    def test_namespace_and_options_reach_kubectl_argv(self):
        transport = K8sCliTransport(
            command_prefix=("kubectl",),
            namespace="sweeps",
            kubectl_options=("--context=fed-b",),
        )
        argv = transport._argv("get", "pods")
        assert argv == ["kubectl", "get", "pods", "-n", "sweeps", "--context=fed-b"]


class TestStubK8sEndToEnd:
    """Through the real K8sCliTransport against tools/stub_k8s.py."""

    def make_backend(self, spool):
        return KubernetesBackend(
            transport=K8sCliTransport(),
            spool=spool,
            python=sys.executable,
            cwd=str(REPO_ROOT),
            pythonpath="src",
            linger=0.01,
            poll_interval=0.05,
        )

    def test_matches_jobs1_byte_identically(self, stub_k8s_env):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = self.make_backend(stub_k8s_env)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.backend == "k8s"
        assert sum(report.host_counts.values()) == 2

    def test_evicted_pod_is_requeued(self, stub_k8s_env, monkeypatch):
        monkeypatch.setenv("REPRO_K8S_STUB_KILL", "1:0")
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = self.make_backend(stub_k8s_env)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.retries == 1

    def test_missing_kubectl_aborts_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KUBECTL_COMMAND", "/nonexistent/kubectl-wrapper")
        backend = KubernetesBackend(
            transport=K8sCliTransport(), spool=tmp_path, linger=0.01, poll_interval=0.05
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(BackendUnavailableError, match="cannot launch kubectl"):
                submit_one(backend, task)
        finally:
            backend.shutdown()


class TestSweepCliK8sFlags:
    def test_cli_end_to_end_matches_jobs1(self, stub_k8s_env, capsys):
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--backend", "k8s", "--spool", str(stub_k8s_env)]
        ) == 0
        over_k8s = json.loads(capsys.readouterr().out)
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--jobs", "1"]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert over_k8s["rows"] == serial["rows"]
        assert over_k8s["headers"] == serial["headers"]
        assert over_k8s["backend"] == "k8s"
        assert sum(over_k8s["host_counts"].values()) == 1

    def test_spool_defaults_under_explicit_cache_dir(self, stub_k8s_env, tmp_path, capsys):
        """--cache-dir on a shared FS must carry the spool with it."""
        cache_dir = tmp_path / "shared-cache"
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--backend", "k8s",
             "--cache-dir", str(cache_dir)]
        ) == 0
        assert "backend=k8s" in capsys.readouterr().out
        assert (cache_dir / "k8s-spool").is_dir()

    def test_namespace_without_k8s_backend_is_an_error(self):
        with pytest.raises(SystemExit, match="only apply to --backend k8s"):
            main(["sweep", "table1", "--namespace", "sweeps"])

    def test_k8s_opt_without_k8s_backend_is_an_error(self):
        with pytest.raises(SystemExit, match="only apply to --backend k8s"):
            main(["sweep", "table1", "--k8s-opt=--context=x"])

    def test_sbatch_opt_with_k8s_backend_is_an_error(self):
        with pytest.raises(SystemExit, match="only apply to --backend slurm"):
            main(["sweep", "table1", "--backend", "k8s", "--sbatch-opt=--time=30"])
