"""Tests for the pluggable execution-backend layer of the sweep engine.

Covers the ISSUE-2 acceptance surface: JSON round-trip of every
registered experiment's grid points, worker-loss retry/reassignment
(killing a fake worker mid-sweep), and ssh-vs-``jobs=1`` result equality
-- via the :class:`InProcessBackend` test double and via a stub SSH
transport that runs the real ``remote_worker`` subprocess locally (no
sshd in CI).
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

import pytest

from repro.cli import coerce_set_value, main
from repro.experiments import registry
from repro.experiments.backends import (
    Backend,
    BackendUnavailableError,
    HostSpec,
    InProcessBackend,
    LocalProcessBackend,
    PointTask,
    RemoteCodeMismatchError,
    RemotePointError,
    SSHBackend,
    WorkerLostError,
    create_backend,
    parse_hosts,
)
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import parallel_map
from repro.experiments.registry import canonical_params
from repro.experiments.remote_worker import run_job
from repro.experiments.runner import SweepError, run_experiment

from conftest import REPO_ROOT, loopback_spec

TINY = {"nodes": 4, "total_time": 1800.0}
FIG67_TINY = {"delays_min": [5, 15], **TINY, "seed": 2}


class TestGridPointsAreWireSafe:
    """Every registered grid point must survive the remote-job wire format."""

    def test_every_grid_point_round_trips_through_json(self):
        for exp in registry.all_experiments():
            for params in exp.build_grid():
                wire = json.loads(json.dumps(params, sort_keys=True))
                assert wire == params, f"{exp.name} point is lossy over JSON"
                assert canonical_params(params) == params

    def test_canonical_params_rejects_non_string_keys(self):
        with pytest.raises(ValueError, match="round-trip"):
            canonical_params({"a": {1: "x"}})

    def test_canonical_params_rejects_non_finite_floats(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            canonical_params({"a": float("nan")})

    def test_canonical_params_still_normalizes_tuples(self):
        assert canonical_params({"a": (1, 2), "b": [3.5]}) == {"a": [1, 2], "b": [3.5]}


class TestHostsParsing:
    def test_inline_list_with_slots(self):
        hosts = parse_hosts("nodeA, nodeB:4")
        assert hosts == [HostSpec(name="nodeA"), HostSpec(name="nodeB", slots=4)]

    def test_inline_single_host(self):
        (host,) = parse_hosts("localhost")
        assert host.name == "localhost" and host.slots == 1

    def test_toml_roster_with_defaults(self, tmp_path):
        roster = tmp_path / "hosts.toml"
        roster.write_text(
            '[defaults]\npython = "python3.12"\nslots = 2\n'
            '[[hosts]]\nname = "a"\n'
            '[[hosts]]\nname = "b"\nslots = 8\ncwd = "/srv/repo"\npythonpath = "src"\n'
        )
        a, b = parse_hosts(str(roster))
        assert a == HostSpec(name="a", slots=2, python="python3.12")
        assert b.slots == 8 and b.cwd == "/srv/repo" and b.pythonpath == "src"

    def test_toml_unknown_key_rejected(self, tmp_path):
        roster = tmp_path / "hosts.toml"
        roster.write_text('[[hosts]]\nname = "a"\nports = 22\n')
        with pytest.raises(ValueError, match="unknown keys"):
            parse_hosts(str(roster))

    def test_missing_toml_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            parse_hosts(str(tmp_path / "nope.toml"))

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_hosts("a,b,a")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_hosts("  ,  ")


class TestCreateBackend:
    def test_names(self):
        assert create_backend(None).name == "local"
        assert create_backend("local", jobs=2).name == "local"
        assert create_backend("inprocess").name == "inprocess"

    def test_instance_passes_through(self):
        backend = InProcessBackend()
        assert create_backend(backend) is backend

    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError, match="--hosts"):
            create_backend("ssh")

    def test_slurm_is_a_registered_backend(self, tmp_path):
        backend = create_backend("slurm", spool=tmp_path)
        assert backend.name == "slurm"
        backend.shutdown()

    def test_k8s_is_a_registered_backend(self, tmp_path):
        backend = create_backend("k8s", spool=tmp_path)
        assert backend.name == "k8s"
        backend.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("nomad")


class TestInProcessBackend:
    def test_matches_jobs1_and_accounts_per_host(self):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = InProcessBackend(hosts=["w0", "w1"])
        report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        assert report.result.render() == serial.result.render()
        assert report.backend == "inprocess"
        assert report.host_counts == {"w0": 1, "w1": 1}
        assert sum(report.host_counts.values()) == report.executed == 2

    def test_worker_loss_mid_sweep_is_reassigned(self):
        """Kill one fake worker mid-sweep: its point must finish elsewhere."""
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)

        def die_once(task, host, attempt):
            return host == "w1" and attempt == 1

        backend = InProcessBackend(hosts=["w0", "w1"], fault=die_once)
        report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        assert report.result.render() == serial.result.render()
        assert report.retries == 1
        assert report.host_counts == {"w0": 2}  # the dead host computed nothing
        assert backend.hosts() == ["w0"]

    def test_retry_budget_exhaustion_raises_sweep_error(self):
        backend = InProcessBackend(
            hosts=["w0", "w1", "w2", "w3", "w4", "w5"],
            fault=lambda task, host, attempt: True,
        )
        with pytest.raises(SweepError, match="giving up"):
            run_experiment(
                "table1", overrides={**TINY, "seed": 1}, backend=backend, max_retries=2
            )

    def test_all_hosts_dead_aborts(self):
        backend = InProcessBackend(
            hosts=["w0"], fault=lambda task, host, attempt: True
        )
        with pytest.raises((BackendUnavailableError, SweepError)):
            run_experiment("table1", overrides={**TINY, "seed": 1}, backend=backend)

    def test_partial_failure_reruns_only_missing_points(self, tmp_path):
        """Streaming cache writes: an aborted sweep resumes where it died."""
        cache = ResultCache(tmp_path)
        overrides = {"delays_min": [5, 15, 30], **TINY, "seed": 2}

        state = {"done": 0}

        def die_after_two(task, host, attempt):
            if state["done"] >= 2:
                return True
            state["done"] += 1
            return False

        doomed = InProcessBackend(hosts=["w0"], fault=die_after_two)
        with pytest.raises((SweepError, BackendUnavailableError)):
            run_experiment(
                "fig6-fig7", overrides=overrides, backend=doomed,
                cache=cache, max_retries=0,
            )
        assert cache.entry_count() == 2  # the completed points were persisted

        resumed = run_experiment(
            "fig6-fig7", overrides=overrides, backend=InProcessBackend(), cache=cache
        )
        assert resumed.cache_hits == 2 and resumed.executed == 1
        fresh = run_experiment("fig6-fig7", overrides=overrides, jobs=1)
        assert resumed.result.render() == fresh.result.render()

    def test_journal_records_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(
            "fig6-fig7",
            overrides=FIG67_TINY,
            backend=InProcessBackend(hosts=["w0", "w1"]),
            cache=cache,
        )
        entries = cache.journal_entries()
        assert len(entries) == 2
        assert {e["host"] for e in entries} == {"w0", "w1"}
        assert all(e["experiment"] == "fig6-fig7" for e in entries)


class TestLocalProcessBackend:
    def test_pool_path_matches_inline_path(self):
        inline = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        pooled = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=2)
        assert pooled.result.render() == inline.result.render()
        assert pooled.backend == "local"
        assert pooled.host_counts == {"local": 2}

    def test_crashed_pool_worker_surfaces_as_worker_loss(self, tmp_path):
        backend = LocalProcessBackend(jobs=2)
        try:
            task = PointTask(
                experiment="crash", params={"marker": str(tmp_path / "s")}, fn=_die_hard
            )
            with pytest.raises(WorkerLostError, match="local"):
                backend.submit(task).result()
            # the backend replaces the broken pool, so new work still runs
            ok = backend.submit(
                PointTask(experiment="ok", params={"x": 1}, fn=canonical_params)
            ).result()
            assert ok.value == {"x": 1} and ok.host == "local"
        finally:
            backend.shutdown()

    def test_runner_retries_through_pool_crash(self, tmp_path):
        """A worker that dies once must not kill the sweep.

        Two grid points, so the pool path engages (one pending point runs
        inline by design); killing one worker breaks the whole pool, so
        every in-flight point is retried on the replacement pool.
        """
        markers = [str(tmp_path / "crash-a"), str(tmp_path / "crash-b")]
        crashy = dataclasses.replace(
            registry.get("table1"),
            grid=lambda: [{"marker": m} for m in markers],
            point=_die_once,
            reduce=lambda grid, points: points,
        )
        report = run_experiment(crashy, jobs=2)
        assert report.result == [{"survived": True}, {"survived": True}]
        assert report.retries >= 1

    def test_single_pending_point_runs_inline_even_with_jobs(self):
        """Historical behaviour: no pool spawn for one cache-missing point."""
        backend = LocalProcessBackend(jobs=8)
        backend.prepare(1)
        outcome = backend.submit(
            PointTask(experiment="t", params={"x": 1}, fn=canonical_params)
        ).result()
        assert outcome.value == {"x": 1}
        assert backend._pool is None  # never paid for worker processes
        backend.shutdown()

    def test_pool_size_bounded_by_pending_hint(self):
        backend = LocalProcessBackend(jobs=8)
        backend.prepare(2)
        try:
            tasks = [
                PointTask(experiment="t", params={"x": i}, fn=canonical_params)
                for i in range(2)
            ]
            values = [o.value for o in backend.map_grid(tasks)]
            assert values == [{"x": 0}, {"x": 1}]
            import os

            expected = min(8, 2, os.cpu_count() or 1)
            assert backend._pool is not None
            assert backend._pool._max_workers == expected
        finally:
            backend.shutdown()

    def test_serial_sweep_fails_fast(self):
        """jobs=1 must stop at the first failing point, not run the grid out."""
        ran = []

        def record(params):
            ran.append(params["i"])
            if params["i"] == 1:
                raise RuntimeError("deterministic point failure")
            return params

        exploding = dataclasses.replace(
            registry.get("table1"),
            grid=lambda: [{"i": i} for i in range(10)],
            point=record,
            reduce=lambda grid, points: points,
        )
        backend = InProcessBackend()
        with pytest.raises(RuntimeError, match="deterministic point failure"):
            run_experiment(exploding, backend=backend)
        assert ran == [0, 1]  # points 2..9 never executed


class TestSSHBackend:
    def test_matches_jobs1_byte_identically(self, stub_ssh):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        backend = SSHBackend([loopback_spec()], ssh_command=stub_ssh)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.result.series == serial.result.series
        assert report.backend == "ssh"
        assert report.host_counts == {"loopback": 2}

    def test_dead_host_points_reassigned_to_live_host(self, stub_ssh):
        serial = run_experiment("fig6-fig7", overrides=FIG67_TINY, jobs=1)
        roster = [
            dataclasses.replace(loopback_spec("deadhost"), slots=1),
            loopback_spec("loopback"),
        ]
        backend = SSHBackend(roster, ssh_command=stub_ssh, max_host_strikes=1)
        try:
            report = run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        finally:
            backend.shutdown()
        assert report.result.render() == serial.result.render()
        assert report.host_counts.get("deadhost", 0) == 0
        assert report.host_counts["loopback"] == 2
        assert report.retries >= 1
        assert backend.hosts() == ["loopback"]

    def test_all_hosts_dead_aborts_not_hangs(self, stub_ssh):
        backend = SSHBackend(
            [dataclasses.replace(loopback_spec("deadhost"), slots=1)],
            ssh_command=stub_ssh,
            max_host_strikes=1,
        )
        try:
            with pytest.raises((SweepError, BackendUnavailableError, WorkerLostError)):
                run_experiment(
                    "table1", overrides={**TINY, "seed": 1}, backend=backend
                )
        finally:
            backend.shutdown()

    def test_code_mismatch_is_refused(self, tmp_path):
        """A host running different sources must not contribute results."""
        liar = tmp_path / "liar-ssh.py"
        liar.write_text(
            "#!/usr/bin/env python3\n"
            "import base64, json, pickle, sys\n"
            "print(json.dumps({'ok': True, 'code_hash': 'f' * 64,\n"
            "                  'elapsed': 0.0,\n"
            "                  'pickle': base64.b64encode(pickle.dumps({})).decode()}))\n"
        )
        backend = SSHBackend(
            [loopback_spec()], ssh_command=(sys.executable, str(liar))
        )
        try:
            task = PointTask(experiment="table1", params={"x": 1}, fn=canonical_params)
            with pytest.raises(RemoteCodeMismatchError, match="different repro sources"):
                backend.submit(task).result()
        finally:
            backend.shutdown()

    def test_stale_host_point_error_diagnosed_as_code_mismatch(self, tmp_path):
        """ok=false from an out-of-sync checkout must say 'sync the repo',
        not present the stale host's confusing point traceback."""
        stale = tmp_path / "stale-ssh.py"
        stale.write_text(
            "#!/usr/bin/env python3\n"
            "import json\n"
            "print(json.dumps({'ok': False, 'code_hash': 'e' * 64,\n"
            "                  'error': \"KeyError: unknown experiment 'shiny-new'\",\n"
            "                  'traceback': ''}))\n"
        )
        backend = SSHBackend(
            [loopback_spec()], ssh_command=(sys.executable, str(stale))
        )
        try:
            fut = backend.submit(
                PointTask(experiment="shiny-new", params={"x": 1}, fn=canonical_params)
            )
            with pytest.raises(RemoteCodeMismatchError, match="sync the repo"):
                fut.result()
        finally:
            backend.shutdown()

    def test_env_var_overrides_transport(self, stub_ssh, monkeypatch):
        from repro.experiments.backends.ssh import default_ssh_command

        monkeypatch.setenv("REPRO_SSH_COMMAND", " ".join(stub_ssh))
        assert default_ssh_command() == tuple(stub_ssh)
        monkeypatch.delenv("REPRO_SSH_COMMAND")
        assert default_ssh_command()[0] == "ssh"


class TestRemoteWorker:
    def test_run_job_success_envelope_round_trips_value(self):
        import base64
        import pickle

        params = {**TINY, "seed": 3}
        envelope = run_job({"experiment": "table1", "params": params})
        assert envelope["ok"] is True
        value = pickle.loads(base64.b64decode(envelope["pickle"]))
        assert value == registry.get("table1").point(canonical_params(params))
        json.dumps(envelope)  # the envelope itself must be wire-safe

    def test_run_job_unknown_experiment_reports_point_error(self):
        envelope = run_job({"experiment": "nope", "params": {}})
        assert envelope["ok"] is False
        assert "unknown experiment" in envelope["error"]

    def test_point_error_is_not_retried(self, stub_ssh, tmp_path):
        """ok=false envelopes raise RemotePointError, not WorkerLostError."""
        backend = SSHBackend([loopback_spec()], ssh_command=stub_ssh)
        try:
            fut = backend.submit(
                PointTask(experiment="does-not-exist", params={"x": 1}, fn=canonical_params)
            )
            with pytest.raises(RemotePointError, match="does-not-exist"):
                fut.result()
        finally:
            backend.shutdown()


class TestParallelMapBridge:
    def test_backend_path_preserves_order_and_values(self):
        backend = InProcessBackend(hosts=["w0", "w1", "w2"])
        items = [{"i": i} for i in range(7)]
        assert parallel_map(canonical_params, items, backend=backend) == items


class TestSweepCliBackendFlags:
    def test_backend_local_explicit(self, tmp_path, capsys):
        rc = main(
            ["sweep", "table1", "--scale", "tiny", "--backend", "local",
             "--cache-dir", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend=local" in out

    def test_backend_ssh_requires_hosts(self):
        with pytest.raises(SystemExit, match="--hosts"):
            main(["sweep", "table1", "--backend", "ssh"])

    def test_hosts_without_ssh_backend_is_an_error(self):
        # an explicit flag must never be a silent no-op
        with pytest.raises(SystemExit, match="only applies to --backend ssh"):
            main(["sweep", "table1", "--hosts", "nodeA"])

    def test_backend_ssh_end_to_end_matches_jobs1(
        self, stub_ssh, tmp_path, capsys, monkeypatch
    ):
        """`repro sweep ... --backend ssh --hosts <loopback>` == `--jobs 1`."""
        roster = tmp_path / "hosts.toml"
        roster.write_text(
            "[[hosts]]\n"
            'name = "loopback"\n'
            "slots = 2\n"
            f'python = "{sys.executable}"\n'
            f'cwd = "{REPO_ROOT}"\n'
            'pythonpath = "src"\n'
        )
        monkeypatch.setenv("REPRO_SSH_COMMAND", " ".join(stub_ssh))
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--backend", "ssh", "--hosts", str(roster)]
        ) == 0
        over_ssh = json.loads(capsys.readouterr().out)
        assert main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--jobs", "1"]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert over_ssh["rows"] == serial["rows"]
        assert over_ssh["headers"] == serial["headers"]
        assert over_ssh["backend"] == "ssh"
        assert over_ssh["host_counts"] == {"loopback": 1}

    def test_summary_reports_hosts(self, capsys):
        # the fields surface through SweepReport.summary() -> CLI output
        report = run_experiment(
            "fig6-fig7",
            overrides=FIG67_TINY,
            backend=InProcessBackend(hosts=["a", "b"]),
        )
        text = report.summary()
        assert "backend=inprocess" in text
        assert "[hosts: a=1 b=1]" in text


class TestSetOverrides:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("5", 5),
            ("5.5", 5.5),
            ("true", True),
            ("False", False),
            ("[5, 15]", [5, 15]),
            ("hc3i", "hc3i"),
            ("3600.0", 3600.0),
        ],
    )
    def test_coercion(self, raw, expected):
        value = coerce_set_value(raw)
        assert value == expected and type(value) is type(expected)

    def test_set_reshapes_a_grid(self, capsys):
        rc = main(
            ["sweep", "fig6-fig7", "--scale", "tiny", "--no-cache", "--json",
             "--set", "delays_min=[5]"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points"] == 1 and payload["xs"] == [5]

    @pytest.mark.parametrize(
        "raw", ["NaN", "Infinity", "-Infinity", "[5, NaN]", '{"a": [Infinity]}']
    )
    def test_non_finite_set_values_rejected_cleanly(self, raw):
        with pytest.raises(SystemExit, match="finite"):
            coerce_set_value(raw)

    def test_set_unknown_key_is_an_error(self):
        with pytest.raises(SystemExit, match="does not accept --set"):
            main(["sweep", "table1", "--no-cache", "--set", "bogus_key=1"])

    def test_set_malformed_pair_is_an_error(self):
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["sweep", "table1", "--no-cache", "--set", "nodes"])

    def test_set_overrides_scale_profile(self, capsys):
        rc = main(
            ["sweep", "table1", "--scale", "tiny", "--no-cache", "--json",
             "--set", "nodes=6"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points"] == 1  # ran with nodes=6, not tiny's 4


class _ScriptedBatchBackend(Backend):
    """A synchronous stand-in for batching backends (SLURM/k8s).

    ``submit`` only buffers -- nothing runs until ``flush`` dispatches
    the whole buffer as one batch, exactly the shape of an array-job or
    indexed-Job submission.  ``script(task, attempt)`` decides each
    dispatched task's fate: an exception instance is delivered through
    the future, anything else becomes the point value.
    """

    name = "scripted-batch"

    def __init__(self, script):
        self._script = script
        self._buffer = []
        self._attempts = {}
        self.batches = []

    def submit(self, task):
        from concurrent.futures import Future

        future = Future()
        self._buffer.append((task, future))
        return future

    def flush(self):
        from repro.experiments.backends import PointOutcome

        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self.batches.append([task.params for task, _ in batch])
        for task, future in batch:
            key = json.dumps(task.params, sort_keys=True)
            attempt = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempt
            verdict = self._script(task, attempt)
            if isinstance(verdict, BaseException):
                future.set_exception(verdict)
            else:
                future.set_result(
                    PointOutcome(value=verdict, host="scripted", elapsed=0.0)
                )


class TestAbortingSweepNeverResubmits:
    """The runner must not let a batching backend dispatch resubmissions
    for a sweep that has already recorded a fatal failure -- the regression
    where ``backend.flush()`` ran after a non-retryable error was recorded
    for another future in the same completed batch."""

    def test_requeue_plus_fatal_in_one_batch_submits_no_new_job(self, monkeypatch):
        """One poll delivers a retryable loss AND a fatal point error; the
        requeued point must stay in the buffer, not go out as a fresh job."""
        from repro.experiments import runner as runner_mod

        fatal = RemotePointError("scripted", "deterministic point failure")

        def script(task, attempt):
            if task.params.get("delay_min") == 5:
                return WorkerLostError("scripted", "pod evicted")
            return fatal

        backend = _ScriptedBatchBackend(script)

        real_wait = runner_mod.wait

        def losses_first_wait(futures, return_when=None):
            done, not_done = real_wait(futures, return_when=return_when)
            # deliver retryable losses before the fatal error so the requeue
            # is buffered by the time the failure is recorded -- the exact
            # interleaving that used to trigger the extra submission
            ordered = sorted(
                done, key=lambda f: not isinstance(f.exception(), WorkerLostError)
            )
            return ordered, not_done

        monkeypatch.setattr(runner_mod, "wait", losses_first_wait)
        with pytest.raises(RemotePointError, match="deterministic point failure"):
            run_experiment("fig6-fig7", overrides=FIG67_TINY, backend=backend)
        assert len(backend.batches) == 1, (
            "the aborting sweep submitted a fresh batch of resubmissions"
        )

    def test_inline_fatal_failure_skips_the_submission_flush(self):
        """Synchronous backends fail at submit time; the post-burst flush
        must not run once that failure is recorded."""

        class FlushSpy(InProcessBackend):
            flush_calls = 0

            def flush(self):
                type(self).flush_calls += 1

        exploding = dataclasses.replace(registry.get("fig6-fig7"), point=_explode)
        backend = FlushSpy()
        with pytest.raises(RuntimeError, match="inline point failure"):
            run_experiment(exploding, overrides=FIG67_TINY, backend=backend)
        assert FlushSpy.flush_calls == 0


# -- module-level point functions (must pickle by reference into workers) --


def _explode(params):
    raise RuntimeError("inline point failure")


def _die_hard(params):
    """Kill the worker process outright: simulates a crashed host."""
    import os

    os._exit(1)


def _die_once(params):
    """Kill the worker on first execution, succeed on the retry."""
    import os
    from pathlib import Path

    marker = Path(params["marker"])
    if not marker.exists():
        marker.write_text("x")
        os._exit(1)
    return {"survived": True}
