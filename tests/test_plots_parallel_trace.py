"""Tests for ASCII plots, the parallel sweep runner and trace export."""

import pytest

from repro.analysis.plots import ascii_plot
from repro.experiments.parallel import parallel_map
from repro.sim.trace import TraceLevel, Tracer


class TestAsciiPlot:
    def test_markers_and_legend(self):
        text = ascii_plot([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "o = a" in text and "x = b" in text
        assert "o" in text and "x" in text

    def test_axis_labels(self):
        text = ascii_plot([5, 120], {"y": [0, 10]}, x_label="delay")
        assert "delay" in text
        assert "5" in text and "120" in text
        assert "10" in text  # y max

    def test_monotone_series_renders_monotone(self):
        xs = list(range(10))
        text = ascii_plot(xs, {"up": [float(x) for x in xs]}, width=20, height=10)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        cols = []
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "o":
                    cols.append((c, r))
        cols.sort()
        # increasing x -> decreasing row index (higher on the canvas)
        rows_in_x_order = [r for _c, r in cols]
        assert rows_in_x_order == sorted(rows_in_x_order, reverse=True)

    def test_constant_series(self):
        text = ascii_plot([1, 2, 3], {"flat": [5, 5, 5]})
        # 3 markers on one row (plus the 'o' in the legend's "o = flat")
        canvas_rows = [line for line in text.splitlines() if "|" in line]
        marked = [r for r in canvas_rows if "o" in r]
        assert len(marked) == 1
        assert marked[0].count("o") == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([], {"a": []})
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"a": [1]})
        with pytest.raises(ValueError):
            ascii_plot([1], {"a": [1]}, width=2, height=2)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_mode(self):
        assert parallel_map(_square, [1, 2, 3], serial=True) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, max_workers=2) == parallel_map(
            _square, items, serial=True
        )

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [7]) == [49]

    def test_sweep_parallel_equals_serial(self):
        """The fig6/7 sweep gives identical numbers both ways."""
        from repro.experiments.fig6_fig7 import clc_delay_sweep

        kwargs = {"delays_min": [10, 30], "nodes": 5, "total_time": 3600.0, "seed": 3}
        serial = clc_delay_sweep(parallel=False, **kwargs)
        para = clc_delay_sweep(parallel=True, **kwargs)
        assert serial.series == para.series


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        tr = Tracer(lambda: 1.5, TraceLevel.DEBUG)
        tr.protocol("clc_commit", cluster=0, sn=3, ddv=(3, 0))
        tr.debug("log_search", cluster=1, entries=4)
        path = tmp_path / "trace.jsonl"
        assert tr.save_jsonl(path) == 2
        records = Tracer.load_jsonl(path)
        assert len(records) == 2
        assert records[0].kind == "clc_commit"
        assert records[0]["cluster"] == 0
        assert records[0].time == 1.5
        assert records[1].level == TraceLevel.DEBUG

    def test_non_json_values_stringified(self, tmp_path):
        from repro.core.hc3i import Piggyback

        tr = Tracer(lambda: 0.0, TraceLevel.DEBUG)
        tr.debug("send", piggyback=Piggyback(sn=1, epoch=0))
        path = tmp_path / "trace.jsonl"
        tr.save_jsonl(path)
        records = Tracer.load_jsonl(path)
        assert "Piggyback" in records[0]["piggyback"]

    def test_federation_trace_exportable(self, tmp_path):
        from tests.conftest import make_federation

        fed = make_federation(clc_period=100.0, total_time=300.0, chatty=True)
        fed.run()
        path = tmp_path / "run.jsonl"
        count = fed.tracer.save_jsonl(path)
        assert count == len(fed.tracer)
        assert len(Tracer.load_jsonl(path)) == count
