"""Unit tests for the pure recovery-line / GC bound computations."""

import pytest

from repro.core.recovery_line import cascade_targets, compute_min_sns


def stored(*cluster_records):
    """Helper: each argument is a list of (sn, ddv-tuple) for one cluster."""
    return [list(records) for records in cluster_records]


class TestCascadeTargets:
    def test_faulty_rolls_to_last(self):
        s = stored(
            [(1, (1, 0)), (2, (2, 0))],
            [(1, (0, 1))],
        )
        targets = cascade_targets(s, current_ddvs=[(2, 0), (0, 1)], failed=0)
        assert targets[0] == 2
        assert targets[1] is None  # no dependency on cluster 0

    def test_dependent_cluster_rolls_back(self):
        # cluster 1 received from cluster 0 with SN 2: forced CLC ddv (2, 2)
        s = stored(
            [(1, (1, 0)), (2, (2, 0)), (3, (3, 0))],
            [(1, (0, 1)), (2, (2, 2))],
        )
        # cluster 0 fails having stored 2 CLCs -> new SN 2... make its last 2
        s[0] = [(1, (1, 0)), (2, (2, 0))]
        targets = cascade_targets(s, current_ddvs=[(2, 0), (2, 2)], failed=0)
        assert targets[0] == 2
        # ddv[0]=2 >= alert 2 -> oldest CLC with ddv[0] >= 2 is sn 2
        assert targets[1] == 2

    def test_no_rollback_when_entry_below_alert(self):
        s = stored(
            [(1, (1, 0)), (2, (2, 0)), (3, (3, 0))],
            [(1, (0, 1)), (2, (2, 2))],
        )
        # cluster 0's last CLC is 3: alert SN 3 > ddv[0]=2 everywhere in c1
        targets = cascade_targets(s, current_ddvs=[(3, 0), (2, 2)], failed=0)
        assert targets == [3, None]

    def test_figure5_cascade(self):
        """The paper's §4 example (clusters 0,1,2 = paper 1,2,3)."""
        c0 = [(1, (1, 0, 0)), (2, (2, 0, 3))]          # m5 forced sn 2
        c1 = [(1, (0, 1, 0)), (2, (1, 2, 0)), (3, (1, 3, 0)), (4, (1, 4, 0))]
        c2 = [(1, (0, 0, 1)), (2, (0, 3, 2)), (3, (0, 4, 3))]  # m3, m4 forced
        current = [(2, 0, 3), (1, 4, 0), (0, 4, 3)]
        targets = cascade_targets([c0, c1, c2], current, failed=1)
        assert targets[1] == 4          # faulty: last CLC
        assert targets[2] == 3          # oldest with ddv[1] >= 4
        assert targets[0] == 2          # oldest with ddv[2] >= 3 (cascade)

    def test_cascade_terminates_on_cycle(self):
        # two clusters that depend on each other heavily
        c0 = [(1, (1, 0)), (2, (2, 1)), (3, (3, 2))]
        c1 = [(1, (0, 1)), (2, (2, 2)), (3, (3, 3))]
        targets = cascade_targets(
            [c0, c1], current_ddvs=[(3, 2), (3, 3)], failed=0
        )
        assert targets[0] is not None and targets[1] is not None

    def test_deep_cascade_to_initial(self):
        # every checkpoint of c1 depends on the latest of c0 -> domino to 1
        c0 = [(1, (1, 0))]
        c1 = [(1, (0, 1)), (2, (1, 2))]
        targets = cascade_targets([c0, c1], [(1, 0), (1, 2)], failed=0)
        assert targets[0] == 1
        assert targets[1] == 2  # oldest with ddv[0] >= 1

    def test_current_ddv_triggers_without_new_checkpoint(self):
        # c1's current DDV saw SN 2 (update pending in last CLC) -- the
        # stored CLC with ddv[0] >= 2 is the boundary forced CLC.
        c0 = [(1, (1, 0)), (2, (2, 0))]
        c1 = [(1, (0, 1)), (2, (2, 2))]
        targets = cascade_targets([c0, c1], [(2, 0), (2, 2)], failed=0)
        assert targets[1] == 2

    def test_bad_failed_index(self):
        with pytest.raises(ValueError):
            cascade_targets([[(1, (1,))]], [(1,)], failed=3)

    def test_faulty_without_checkpoints(self):
        with pytest.raises(ValueError):
            cascade_targets([[], [(1, (0, 1))]], [(0, 0), (0, 1)], failed=0)

    def test_non_monotone_sns_rejected(self):
        with pytest.raises(ValueError):
            cascade_targets(
                [[(2, (2, 0)), (1, (1, 0))], [(1, (0, 1))]],
                [(2, 0), (0, 1)],
                failed=0,
            )

    def test_three_cluster_chain(self):
        # c0 -> c1 -> c2 dependency chain; failure of c0 unwinds all
        c0 = [(1, (1, 0, 0))]
        c1 = [(1, (0, 1, 0)), (2, (1, 2, 0))]
        c2 = [(1, (0, 0, 1)), (2, (0, 2, 2))]
        targets = cascade_targets(
            [c0, c1, c2], [(1, 0, 0), (1, 2, 0), (0, 2, 2)], failed=0
        )
        assert targets == [1, 2, 2]


class TestComputeMinSns:
    def test_independent_clusters_keep_last(self):
        s = stored(
            [(1, (1, 0)), (2, (2, 0))],
            [(1, (0, 1)), (2, (0, 2))],
        )
        mins = compute_min_sns(s, [(2, 0), (0, 2)])
        assert mins == [2, 2]  # only own-failure scenarios matter

    def test_dependency_lowers_bound(self):
        c0 = [(1, (1, 0)), (2, (2, 0)), (3, (3, 0))]
        c1 = [(1, (0, 1)), (2, (2, 2))]
        mins = compute_min_sns([c0, c1], [(3, 0), (2, 2)])
        # c0's failure rolls it to 3; c1 keeps 2 (ddv[0]=2 < 3).
        # c1's failure rolls it to 2; c0 does not depend on c1 -> stays.
        assert mins == [3, 2]

    def test_mutual_dependencies(self):
        c0 = [(1, (1, 0)), (2, (2, 1)), (3, (3, 2))]
        c1 = [(1, (0, 1)), (2, (2, 2)), (3, (3, 3))]
        mins = compute_min_sns([c0, c1], [(3, 2), (3, 3)])
        # both failure scenarios drag the peer back
        assert mins[0] <= 3 and mins[1] <= 3
        assert mins[0] >= 1 and mins[1] >= 1

    def test_pruning_with_bounds_preserves_targets(self):
        """GC safety: after pruning sn < min, every failure still finds its
        cascade targets among the kept CLCs."""
        c0 = [(1, (1, 0)), (2, (2, 0)), (3, (3, 2))]
        c1 = [(1, (0, 1)), (2, (2, 2)), (3, (2, 3))]
        current = [(3, 2), (2, 3)]
        mins = compute_min_sns([c0, c1], current)
        pruned = [
            [(sn, ddv) for sn, ddv in cluster if sn >= mins[i]]
            for i, cluster in enumerate([c0, c1])
        ]
        for failed in (0, 1):
            before = cascade_targets([c0, c1], current, failed)
            after = cascade_targets(pruned, current, failed)
            assert before == after

    def test_empty_cluster_bound_zero(self):
        mins = compute_min_sns([[], [(1, (0, 1))]], [(0, 0), (0, 1)])
        assert mins[0] == 0
