"""End-to-end integration tests across protocols, seeds and failures."""

import pytest

from repro.analysis.consistency import check_invariants, verify_consistency
from repro.analysis.rollback_cost import rollback_costs
from repro.cluster.federation import Federation
from repro.network.message import NodeId
from repro.sim.trace import TraceLevel
from tests.conftest import (
    chatty_application,
    default_timers,
    make_federation,
    small_topology,
)

ALL_PROTOCOLS = [
    "hc3i",
    "hc3i-transitive",
    "cic-always",
    "global-coordinated",
    "independent",
    "pessimistic-log",
]


class TestEveryProtocolRuns:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_failure_free_run_completes(self, protocol):
        fed = make_federation(
            protocol=protocol, clc_period=100.0, total_time=600.0, chatty=True
        )
        results = fed.run()
        assert results.duration == 600.0
        assert sum(results.messages.values()) > 0
        assert results.clc_counts(0)["total"] >= 1

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_run_with_failure_completes(self, protocol):
        fed = make_federation(
            protocol=protocol, clc_period=100.0, total_time=800.0, chatty=True
        )
        fed.start()
        fed.sim.run(until=350.0)
        fed.inject_failure(NodeId(0, 1))
        results = fed.run()
        assert results.duration == 800.0
        assert results.counter("rollback/failures") == 1
        # everyone is back up at the end
        for cluster in fed.clusters:
            for node in cluster.nodes:
                assert node.up

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_deterministic_given_seed(self, protocol):
        def run():
            fed = make_federation(
                protocol=protocol, clc_period=100.0, total_time=400.0,
                chatty=True, seed=21,
            )
            results = fed.run()
            return (
                dict(results.messages),
                [results.clc_counts(c)["total"] for c in range(2)],
                results.protocol_messages,
            )

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            fed = make_federation(
                clc_period=100.0, total_time=600.0, chatty=True, seed=seed
            )
            return dict(fed.run().messages)

        assert run(1) != run(2)


class TestConsistencyUnderFailures:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_single_failure_consistent(self, seed):
        fed = make_federation(
            n_clusters=3, nodes=2, clc_period=80.0, total_time=1200.0,
            chatty=True, seed=seed,
        )
        fed.start()
        fed.sim.run(until=500.0)
        victim = NodeId(seed % 3, seed % 2)
        fed.inject_failure(victim)
        fed.run()
        report = verify_consistency(fed)
        assert report.ok, str(report)
        assert check_invariants(fed) == []

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_sequential_failures_consistent(self, seed):
        fed = make_federation(
            n_clusters=2, nodes=3, clc_period=80.0, total_time=1500.0,
            chatty=True, seed=seed,
        )
        fed.start()
        fed.sim.run(until=400.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=800.0)
        fed.inject_failure(NodeId(1, 2))
        fed.run()
        report = verify_consistency(fed)
        assert report.ok, str(report)
        assert check_invariants(fed) == []

    def test_mtbf_driven_failures_consistent(self):
        topo = small_topology(n_clusters=2, nodes=3)
        topo.mtbf = 250.0
        fed = Federation(
            topo,
            chatty_application(total_time=2000.0),
            default_timers(clc_period=100.0),
            seed=33,
            trace_level=TraceLevel.PROTOCOL,
        )
        results = fed.run()
        assert results.counter("failures/injected") >= 2
        report = verify_consistency(fed)
        assert report.ok, str(report)

    def test_failure_during_gc_safe(self):
        fed = make_federation(
            nodes=2, clc_period=60.0, gc_period=150.0, total_time=1500.0,
            chatty=True, seed=8,
        )
        fed.start()
        # inject failures near GC instants
        fed.sim.schedule_at(150.5, fed.inject_failure, NodeId(0, 1))
        fed.sim.schedule_at(600.2, fed.inject_failure, NodeId(1, 0))
        fed.run()
        assert check_invariants(fed) == []

    def test_rollback_cost_report(self):
        fed = make_federation(
            clc_period=100.0, total_time=1000.0, chatty=True, seed=3,
        )
        fed.start()
        fed.sim.run(until=400.0)
        fed.inject_failure(NodeId(0, 0))
        fed.run()
        costs = rollback_costs(fed)
        assert costs.failures == 1
        assert costs.rollbacks >= 1
        assert costs.lost_work_node_seconds > 0
        assert len(costs.clusters_rolled_per_failure) == 1


class TestHeterogeneousTopology:
    def test_uneven_cluster_sizes(self):
        from repro.config.application import ApplicationConfig, ClusterAppSpec
        from repro.config.timers import TimersConfig
        from repro.network.topology import ClusterSpec, Topology

        topo = Topology(clusters=[ClusterSpec("big", 6), ClusterSpec("small", 1)])
        app = ApplicationConfig(
            clusters=[
                ClusterAppSpec(mean_compute=30.0, send_probabilities=[0.8, 0.2]),
                ClusterAppSpec(mean_compute=30.0, send_probabilities=[0.2, 0.8]),
            ],
            total_time=500.0,
        )
        fed = Federation(topo, app, TimersConfig(clc_periods=[100.0, 100.0]), seed=2)
        results = fed.run()
        assert results.clc_counts(0)["total"] >= 4
        assert results.clc_counts(1)["total"] >= 4

    def test_five_clusters(self):
        fed = make_federation(
            n_clusters=5, nodes=2, clc_period=150.0, total_time=800.0,
            chatty=True, seed=17,
        )
        results = fed.run()
        for c in range(5):
            assert results.clc_counts(c)["total"] >= 1
        assert check_invariants(fed) == []

    def test_single_cluster_degenerates_gracefully(self):
        """With one cluster HC3I is plain coordinated checkpointing."""
        fed = make_federation(
            n_clusters=1, nodes=4, clc_period=100.0, total_time=600.0,
        )
        results = fed.run()
        assert results.clc_counts(0)["forced"] == 0
        assert results.clc_counts(0)["unforced"] >= 4
