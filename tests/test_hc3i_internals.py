"""Unit tests for HC3I internals: piggyback, ghost cuts, options, buffering."""

import pytest

from repro.core.hc3i import Hc3iClusterState, Hc3iOptions, Piggyback
from repro.network.message import Message, MessageKind, NodeId
from tests.conftest import make_federation


class TestPiggyback:
    def test_entry_for_sn_mode(self):
        p = Piggyback(sn=5, epoch=0)
        assert p.entry_for(0) == 5
        assert p.entry_for(3) == 5  # SN mode: same value for any cluster

    def test_entry_for_ddv_mode(self):
        p = Piggyback(sn=5, epoch=0, ddv=(5, 2, 7))
        assert p.entry_for(0) == 5
        assert p.entry_for(1) == 2
        assert p.entry_for(2) == 7

    def test_immutable(self):
        p = Piggyback(sn=1, epoch=0)
        with pytest.raises(AttributeError):
            p.sn = 2  # type: ignore[misc]


class TestGhostCuts:
    def make_state(self):
        return Hc3iClusterState(index=0, n_clusters=3)

    def test_no_cuts_nothing_is_ghost(self):
        cs = self.make_state()
        assert not cs.is_ghost(1, Piggyback(sn=5, epoch=0))

    def test_message_from_erased_epoch_is_ghost(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=3, new_epoch=1)
        # sent in epoch 0 with SN >= 3: the rollback to 3 erased it
        assert cs.is_ghost(1, Piggyback(sn=3, epoch=0))
        assert cs.is_ghost(1, Piggyback(sn=7, epoch=0))

    def test_message_below_cut_survives(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=3, new_epoch=1)
        assert not cs.is_ghost(1, Piggyback(sn=2, epoch=0))

    def test_new_epoch_message_not_ghost(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=3, new_epoch=1)
        # sent after the rollback (epoch 1): valid whatever the SN
        assert not cs.is_ghost(1, Piggyback(sn=5, epoch=1))

    def test_multiple_rollbacks_accumulate_cuts(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=5, new_epoch=1)
        cs.record_alert(faulty=1, alert_sn=2, new_epoch=2)
        # epoch-1 send with SN >= 2 erased by the second rollback
        assert cs.is_ghost(1, Piggyback(sn=2, epoch=1))
        assert not cs.is_ghost(1, Piggyback(sn=1, epoch=1))
        # epoch-0 send erased by either cut
        assert cs.is_ghost(1, Piggyback(sn=2, epoch=0))

    def test_stale_alert_epoch_ignored(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=3, new_epoch=2)
        cs.record_alert(faulty=1, alert_sn=1, new_epoch=1)  # stale, ignored
        assert cs.known_epochs[1] == 2
        assert len(cs.ghost_cuts[1]) == 1

    def test_cuts_per_source_cluster(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=3, new_epoch=1)
        assert not cs.is_ghost(2, Piggyback(sn=5, epoch=0))

    def test_ddv_mode_uses_source_entry(self):
        cs = self.make_state()
        cs.record_alert(faulty=1, alert_sn=3, new_epoch=1)
        # sender 1's own entry is 2 < 3: survives even though another
        # entry is large
        assert not cs.is_ghost(1, Piggyback(sn=2, epoch=0, ddv=(9, 2, 9)))
        assert cs.is_ghost(1, Piggyback(sn=3, epoch=0, ddv=(0, 3, 0)))


class TestOptions:
    def test_defaults_match_paper(self):
        opts = Hc3iOptions.from_dict({})
        assert opts.mode == "sn"
        assert opts.replay_enabled
        assert opts.replication_degree == 1
        assert opts.gc_mode == "centralized"
        assert not opts.incremental

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Hc3iOptions.from_dict({"mode": "telepathic"})

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            Hc3iOptions.from_dict({"replication_degree": -1})

    def test_invalid_gc_mode(self):
        with pytest.raises(ValueError):
            Hc3iOptions.from_dict({"gc_mode": "quantum"})

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Hc3iOptions.from_dict({"incremental_fraction": 1.5})

    def test_unknown_protocol_name(self):
        with pytest.raises(ValueError):
            make_federation(protocol="no-such-protocol")


class TestDownNodeBuffering:
    def build(self):
        fed = make_federation(nodes=2, clc_period=None, total_time=100.0)
        fed.start()
        fed.sim.run(until=5.0)
        return fed

    def test_inter_cluster_app_buffered(self):
        fed = self.build()
        node = fed.node(NodeId(1, 0))
        node.fail()
        msg = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP, size=10,
            piggyback=Piggyback(sn=1, epoch=0),
        )
        node._on_fabric_delivery(msg)
        assert node._held == [msg]

    def test_intra_cluster_app_dropped(self):
        fed = self.build()
        node = fed.node(NodeId(1, 0))
        node.fail()
        msg = Message(
            src=NodeId(1, 1), dst=NodeId(1, 0), kind=MessageKind.APP, size=10
        )
        node._on_fabric_delivery(msg)
        assert node._held == []

    def test_2pc_control_dropped(self):
        fed = self.build()
        node = fed.node(NodeId(1, 0))
        node.fail()
        for kind in (
            MessageKind.CLC_REQUEST,
            MessageKind.CLC_COMMIT,
            MessageKind.CLC_INITIATE,
            MessageKind.REPLICA,
        ):
            node._on_fabric_delivery(
                Message(src=NodeId(1, 1), dst=NodeId(1, 0), kind=kind, size=10)
            )
        assert node._held == []

    def test_alert_and_ack_buffered(self):
        fed = self.build()
        node = fed.node(NodeId(1, 0))
        node.fail()
        alert = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.ALERT, size=10,
            payload={"faulty": 0, "sn": 1, "epoch": 1},
        )
        ack = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.INTER_ACK,
            size=10, payload={"msg_id": 1, "ack_sn": 2},
        )
        node._on_fabric_delivery(alert)
        node._on_fabric_delivery(ack)
        assert len(node._held) == 2

    def test_heartbeat_never_buffered(self):
        fed = self.build()
        node = fed.node(NodeId(1, 0))
        node.fail()
        node._on_fabric_delivery(
            Message(src=NodeId(1, 1), dst=NodeId(1, 0),
                    kind=MessageKind.HEARTBEAT, size=8)
        )
        assert node._held == []

    def test_buffered_messages_flushed_on_recover(self):
        fed = self.build()
        node = fed.node(NodeId(1, 0))
        node.fail()
        msg = Message(
            src=NodeId(0, 0), dst=NodeId(1, 0), kind=MessageKind.APP, size=10,
            piggyback=Piggyback(sn=1, epoch=0),
        )
        node._on_fabric_delivery(msg)
        node.recover()
        fed.sim.run(until=50.0)
        cs = fed.protocol.cluster_states[1]
        assert msg.msg_id in cs.delivered_ids


class TestClusterSummary:
    def test_summary_fields(self):
        fed = make_federation(clc_period=50.0, total_time=300.0, chatty=True)
        fed.run()
        summary = fed.protocol.cluster_summary(0)
        for key in (
            "sn", "ddv", "clc_initial", "clc_unforced", "clc_forced",
            "clc_total", "clc_stored", "log_entries", "log_bytes",
            "log_max_entries", "rollback_epoch",
        ):
            assert key in summary
        assert summary["clc_total"] == (
            summary["clc_initial"] + summary["clc_unforced"] + summary["clc_forced"]
        )

    def test_results_accessors(self):
        fed = make_federation(clc_period=50.0, total_time=300.0, chatty=True)
        results = fed.run()
        assert results.stored_clcs(0) == results.clusters[0]["clc_stored"]
        assert results.counter("nonexistent", default=7) == 7
        table = results.message_matrix_table()
        assert len(table) == 4  # 2x2 cluster pairs
        assert results.clusters[0]["states_per_node"] == 2 * results.stored_clcs(0)
