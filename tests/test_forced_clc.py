"""Protocol tests: the communication-induced layer (§3.2).

A CLC is forced in the receiver's cluster iff the piggybacked SN is greater
than the receiver's DDV entry for the sender's cluster; the message is
delivered only after the forced CLC commits, and acknowledged with the
receiver's SN + 1 at arrival.
"""

from repro.app.process import Mailbox, scripted_sender_factory
from repro.core.clc import CheckpointCause
from repro.network.message import NodeId
from tests.conftest import make_federation


def scripted_fed(scripts, n_clusters=2, nodes=2, total_time=200.0, **kw):
    fed = make_federation(
        n_clusters=n_clusters,
        nodes=nodes,
        clc_period=None,
        total_time=total_time,
        app_factory=scripted_sender_factory(scripts),
        **kw,
    )
    return fed


class TestForceDecision:
    def test_first_message_forces(self):
        """SN 1 > DDV entry 0: forced CLC before delivery."""
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        results = fed.run()
        assert results.clc_counts(1)["forced"] == 1
        cs = fed.protocol.cluster_states[1]
        assert cs.ddv[0] == 1
        assert cs.sn == 2
        assert cs.store.last().cause is CheckpointCause.FORCED

    def test_second_message_same_sn_does_not_force(self):
        """Fig. 4 / §4: m2 with an already-seen SN is delivered directly."""
        fed = scripted_fed({
            NodeId(0, 0): [
                (10.0, NodeId(1, 0), 100),
                (20.0, NodeId(1, 0), 100),
            ],
        })
        results = fed.run()
        assert results.clc_counts(1)["forced"] == 1  # only m1 forced
        assert len(fed.protocol.cluster_states[1].delivered_ids) == 2

    def test_new_sender_checkpoint_forces_again(self):
        """A CLC at the sender between two sends re-arms the force."""
        fed = scripted_fed({
            NodeId(0, 0): [
                (10.0, NodeId(1, 0), 100),
                (40.0, NodeId(1, 0), 100),
            ],
        })
        fed.start()
        fed.sim.schedule_at(25.0, fed.protocol.request_checkpoint, 0)
        fed.sim.run(until=200.0)
        assert fed.results().clc_counts(1)["forced"] == 2
        assert fed.protocol.cluster_states[1].ddv[0] == 2

    def test_message_delivered_after_forced_commit(self):
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        mailbox = Mailbox()
        fed.start()
        fed.node(NodeId(1, 0)).app_sink = mailbox
        fed.sim.run(until=200.0)
        assert len(mailbox) == 1
        deliver_time = None
        commit = fed.tracer.first("clc_commit", cluster=1, sn=2)
        delivered = fed.tracer.first("inter_delivered", cluster=1)
        assert commit is not None and delivered is not None
        assert delivered.time >= commit.time

    def test_intra_cluster_message_never_forces(self):
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(0, 1), 100)]})
        results = fed.run()
        assert results.clc_counts(0)["forced"] == 0
        assert results.app_messages(0, 0) == 1

    def test_ddv_tracks_only_received_from(self):
        """DDV entries for clusters never heard from stay 0."""
        fed = scripted_fed(
            {NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]},
            n_clusters=3,
        )
        fed.run()
        cs2 = fed.protocol.cluster_states[2]
        assert list(cs2.ddv) == [0, 0, 1]


class TestAcknowledgements:
    def test_forced_ack_is_sn_plus_one(self):
        """§4: "inter cluster messages are acknowledged with the local
        SN + 1"."""
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        fed.run()
        entries = list(fed.protocol.cluster_states[0].sent_log)
        assert len(entries) == 1
        assert entries[0].ack_sn == 2  # receiver SN was 1 at arrival

    def test_unforced_ack_is_sn_plus_one_too(self):
        fed = scripted_fed({
            NodeId(0, 0): [
                (10.0, NodeId(1, 0), 100),
                (20.0, NodeId(1, 0), 100),
            ],
        })
        fed.run()
        entries = sorted(
            fed.protocol.cluster_states[0].sent_log, key=lambda e: e.msg.msg_id
        )
        assert [e.ack_sn for e in entries] == [2, 3]

    def test_every_send_logged(self):
        """§3.3: every inter-cluster message is optimistically logged."""
        fed = scripted_fed({
            NodeId(0, 0): [(10.0, NodeId(1, 0), 100)],
            NodeId(1, 1): [(30.0, NodeId(0, 1), 100)],
        })
        fed.run()
        assert len(fed.protocol.cluster_states[0].sent_log) == 1
        assert len(fed.protocol.cluster_states[1].sent_log) == 1

    def test_send_sn_recorded(self):
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        fed.run()
        entry = next(iter(fed.protocol.cluster_states[0].sent_log))
        assert entry.send_sn == 1
        assert entry.dest_cluster == 1


class TestPiggybackModes:
    def test_sn_mode_piggybacks_sn(self):
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        fed.run()
        entry = next(iter(fed.protocol.cluster_states[0].sent_log))
        assert entry.msg.piggyback.sn == 1
        assert entry.msg.piggyback.ddv is None

    def test_ddv_mode_piggybacks_vector(self):
        fed = scripted_fed(
            {NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]},
            protocol_options={"mode": "ddv"},
        )
        fed.run()
        entry = next(iter(fed.protocol.cluster_states[0].sent_log))
        assert entry.msg.piggyback.ddv == (1, 0)

    def test_transitive_dependency_learned(self):
        """c0 -> c1 -> c2 in DDV mode: c2 learns c0's SN through c1, so a
        later direct c0 -> c2 message with the same SN does not force."""
        fed = scripted_fed(
            {
                NodeId(0, 0): [
                    (10.0, NodeId(1, 0), 100),
                    (60.0, NodeId(2, 0), 100),   # direct skip message
                ],
                NodeId(1, 0): [(40.0, NodeId(2, 0), 100)],
            },
            n_clusters=3,
            protocol_options={"mode": "ddv"},
        )
        results = fed.run()
        cs2 = fed.protocol.cluster_states[2]
        assert cs2.ddv[0] == 1          # learned transitively AND directly
        # c2 forced once for the c1 message (which carried c0's entry);
        # the direct c0 message found ddv[0] already >= 1 -> no new force.
        assert results.clc_counts(2)["forced"] == 1

    def test_sn_mode_forces_on_direct_after_indirect(self):
        """Same scenario in SN mode: the direct message DOES force."""
        fed = scripted_fed(
            {
                NodeId(0, 0): [
                    (10.0, NodeId(1, 0), 100),
                    (60.0, NodeId(2, 0), 100),
                ],
                NodeId(1, 0): [(40.0, NodeId(2, 0), 100)],
            },
            n_clusters=3,
            protocol_options={"mode": "sn"},
        )
        results = fed.run()
        assert results.clc_counts(2)["forced"] == 2

    def test_always_mode_forces_every_message(self):
        fed = scripted_fed(
            {
                NodeId(0, 0): [
                    (10.0, NodeId(1, 0), 100),
                    (20.0, NodeId(1, 0), 100),
                    (30.0, NodeId(1, 0), 100),
                ],
            },
            protocol_options={"mode": "always"},
        )
        results = fed.run()
        assert results.clc_counts(1)["forced"] == 3


class TestDeliveryBookkeeping:
    def test_delivered_ids_grow(self):
        fed = scripted_fed({
            NodeId(0, 0): [(10.0, NodeId(1, 0), 100), (20.0, NodeId(1, 0), 100)],
        })
        fed.run()
        assert len(fed.protocol.cluster_states[1].delivered_ids) == 2

    def test_duplicate_delivery_suppressed(self):
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        mailbox = Mailbox()
        fed.start()
        fed.node(NodeId(1, 0)).app_sink = mailbox
        fed.sim.run(until=100.0)
        # replay the logged message although nothing failed
        entry = next(iter(fed.protocol.cluster_states[0].sent_log))
        fed.fabric.send(entry.msg.clone_for_replay())
        fed.sim.run(until=200.0)
        assert len(mailbox) == 1  # not delivered twice
        assert fed.results().counter("hc3i/duplicates") == 1

    def test_clc_snapshot_contains_queued_message(self):
        """The forced CLC's queue snapshot holds the pending message."""
        fed = scripted_fed({NodeId(0, 0): [(10.0, NodeId(1, 0), 100)]})
        fed.run()
        cs = fed.protocol.cluster_states[1]
        forced_record = cs.store.records[-1]
        assert forced_record.cause is CheckpointCause.FORCED
        queued_ids = [entry.msg.msg_id for _n, entry in forced_record.queued]
        sent_id = next(iter(fed.protocol.cluster_states[0].sent_log)).msg.msg_id
        assert queued_ids == [sent_id]
        # but the delivery itself is NOT in the record's delivered set
        assert sent_id not in forced_record.delivered_ids
