"""Shared fixtures and helpers for the HC3I reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import TimersConfig
from repro.network.message import NodeId
from repro.network.topology import ClusterSpec, LinkSpec, Topology
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLevel


FAST_INTRA = LinkSpec(latency=10e-6, bandwidth=80e6)
FAST_INTER = LinkSpec(latency=150e-6, bandwidth=100e6)


def small_topology(n_clusters: int = 2, nodes: int = 3) -> Topology:
    return Topology(
        clusters=[ClusterSpec(f"c{i}", nodes, FAST_INTRA) for i in range(n_clusters)],
        default_inter_link=FAST_INTER,
    )


def idle_application(n_clusters: int = 2, total_time: float = 1000.0) -> ApplicationConfig:
    """An application that (almost) never sends -- for protocol-only tests."""
    return ApplicationConfig(
        clusters=[
            ClusterAppSpec(mean_compute=1e12, send_probabilities=[])
            for _ in range(n_clusters)
        ],
        total_time=total_time,
    )


def chatty_application(
    n_clusters: int = 2,
    total_time: float = 1000.0,
    mean_compute: float = 30.0,
    p_inter: float = 0.2,
) -> ApplicationConfig:
    """A busy application with plenty of inter-cluster traffic."""
    specs = []
    for c in range(n_clusters):
        probs = [p_inter / (n_clusters - 1)] * n_clusters if n_clusters > 1 else [0.0]
        if n_clusters > 1:
            probs[c] = 1.0 - p_inter
        specs.append(
            ClusterAppSpec(mean_compute=mean_compute, send_probabilities=probs)
        )
    return ApplicationConfig(clusters=specs, total_time=total_time)


def default_timers(n_clusters: int = 2, clc_period=120.0, gc_period=None) -> TimersConfig:
    return TimersConfig(
        clc_periods=[clc_period] * n_clusters,
        gc_period=gc_period,
        failure_detection_delay=0.5,
        checkpoint_restore_time=0.2,
        node_repair_time=1.0,
        node_state_size=100_000,
    )


def make_federation(
    n_clusters: int = 2,
    nodes: int = 3,
    total_time: float = 1000.0,
    clc_period=120.0,
    gc_period=None,
    protocol: str = "hc3i",
    protocol_options=None,
    seed: int = 0,
    chatty: bool = False,
    trace: TraceLevel = TraceLevel.PROTOCOL,
    app_factory=None,
) -> Federation:
    application = (
        chatty_application(n_clusters, total_time)
        if chatty
        else idle_application(n_clusters, total_time)
    )
    return Federation(
        small_topology(n_clusters, nodes),
        application,
        default_timers(n_clusters, clc_period, gc_period),
        protocol=protocol,
        protocol_options=protocol_options,
        seed=seed,
        trace_level=trace,
        app_factory=app_factory,
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fed() -> Federation:
    return make_federation()


def nid(cluster: int, node: int) -> NodeId:
    return NodeId(cluster, node)
