"""Shared fixtures and helpers for the HC3I reproduction test suite."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import TimersConfig
from repro.network.message import NodeId
from repro.network.topology import ClusterSpec, LinkSpec, Topology
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLevel


FAST_INTRA = LinkSpec(latency=10e-6, bandwidth=80e6)
FAST_INTER = LinkSpec(latency=150e-6, bandwidth=100e6)


def small_topology(n_clusters: int = 2, nodes: int = 3) -> Topology:
    return Topology(
        clusters=[ClusterSpec(f"c{i}", nodes, FAST_INTRA) for i in range(n_clusters)],
        default_inter_link=FAST_INTER,
    )


def idle_application(n_clusters: int = 2, total_time: float = 1000.0) -> ApplicationConfig:
    """An application that (almost) never sends -- for protocol-only tests."""
    return ApplicationConfig(
        clusters=[
            ClusterAppSpec(mean_compute=1e12, send_probabilities=[])
            for _ in range(n_clusters)
        ],
        total_time=total_time,
    )


def chatty_application(
    n_clusters: int = 2,
    total_time: float = 1000.0,
    mean_compute: float = 30.0,
    p_inter: float = 0.2,
) -> ApplicationConfig:
    """A busy application with plenty of inter-cluster traffic."""
    specs = []
    for c in range(n_clusters):
        probs = [p_inter / (n_clusters - 1)] * n_clusters if n_clusters > 1 else [0.0]
        if n_clusters > 1:
            probs[c] = 1.0 - p_inter
        specs.append(
            ClusterAppSpec(mean_compute=mean_compute, send_probabilities=probs)
        )
    return ApplicationConfig(clusters=specs, total_time=total_time)


def default_timers(n_clusters: int = 2, clc_period=120.0, gc_period=None) -> TimersConfig:
    return TimersConfig(
        clc_periods=[clc_period] * n_clusters,
        gc_period=gc_period,
        failure_detection_delay=0.5,
        checkpoint_restore_time=0.2,
        node_repair_time=1.0,
        node_state_size=100_000,
    )


def make_federation(
    n_clusters: int = 2,
    nodes: int = 3,
    total_time: float = 1000.0,
    clc_period=120.0,
    gc_period=None,
    protocol: str = "hc3i",
    protocol_options=None,
    seed: int = 0,
    chatty: bool = False,
    trace: TraceLevel = TraceLevel.PROTOCOL,
    app_factory=None,
) -> Federation:
    application = (
        chatty_application(n_clusters, total_time)
        if chatty
        else idle_application(n_clusters, total_time)
    )
    return Federation(
        small_topology(n_clusters, nodes),
        application,
        default_timers(n_clusters, clc_period, gc_period),
        protocol=protocol,
        protocol_options=protocol_options,
        seed=seed,
        trace_level=trace,
        app_factory=app_factory,
    )


REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def stub_ssh(tmp_path):
    """A stand-in for ``ssh``: ignores options/host, runs the command locally.

    Hosts named ``dead*`` refuse the connection (exit 255), so tests can
    kill a fake remote worker without an sshd anywhere.
    """
    script = tmp_path / "stub-ssh.py"
    script.write_text(
        "#!/usr/bin/env python3\n"
        "import subprocess, sys\n"
        "host, command = sys.argv[-2], sys.argv[-1]\n"
        "if host.startswith('dead'):\n"
        "    print('stub-ssh: connection refused', file=sys.stderr)\n"
        "    sys.exit(255)\n"
        "sys.exit(subprocess.call(command, shell=True))\n"
    )
    return (sys.executable, str(script))


def loopback_spec(name: str = "loopback", slots: int = 2):
    """A host that works through the stub transport: this repo, this python."""
    from repro.experiments.backends import HostSpec

    return HostSpec(
        name=name,
        slots=slots,
        python=sys.executable,
        cwd=str(REPO_ROOT),
        pythonpath="src",
    )


class InMemorySlurmTransport:
    """A :class:`SchedulerTransport` that runs array tasks in-process.

    ``sbatch`` is simulated at submit time: each task's wire job is read
    from the spool, executed through the real ``remote_worker.run_job``,
    and its envelope written where the array task would have written it.
    ``fault(job_seq, index, job) -> state | None`` injects scheduler-level
    failures: returning a SLURM state string (e.g. ``"CANCELLED"``) kills
    that task -- terminal state recorded, no result file -- exactly what
    an operator's ``scancel`` mid-sweep looks like to the backend.
    """

    def __init__(self, fault=None) -> None:
        self.fault = fault
        self.seq = 0
        self.jobs: dict = {}
        self.job_dirs: dict = {}
        self.cancelled: list = []

    def submit(self, job_dir, script, n_tasks) -> str:
        from repro.experiments.remote_worker import run_job

        self.seq += 1
        job_id = str(self.seq)
        states = {}
        for i in range(n_tasks):
            job = json.loads((job_dir / "tasks" / f"{i}.json").read_text())
            verdict = self.fault(self.seq, i, job) if self.fault else None
            if verdict:
                states[i] = verdict
                continue
            envelope = run_job(job)
            (job_dir / "results" / f"{i}.json").write_text(json.dumps(envelope))
            states[i] = "COMPLETED"
        self.jobs[job_id] = states
        self.job_dirs[job_id] = job_dir
        return job_id

    def poll(self, job_id: str) -> dict:
        return dict(self.jobs.get(job_id, {}))

    def cancel(self, job_id: str) -> None:
        self.cancelled.append(job_id)


def make_slurm_backend(spool, transport=None, **kwargs):
    """A fast-polling :class:`SlurmBackend` over the in-memory transport."""
    from repro.experiments.backends import SlurmBackend

    kwargs.setdefault("linger", 0.01)
    kwargs.setdefault("poll_interval", 0.01)
    return SlurmBackend(
        transport=transport if transport is not None else InMemorySlurmTransport(),
        spool=Path(spool),
        **kwargs,
    )


class InMemoryK8sTransport:
    """A :class:`K8sTransport` that runs completion indices in-process.

    ``kubectl create`` is simulated at submit time: each index's wire job
    is read from the spool, executed through the real
    ``remote_worker.run_job``, and its envelope written where the pod
    would have written it.  ``fault(job_seq, index, job) -> phase | None``
    injects control-plane failures: returning a pod phase string (e.g.
    ``"EVICTED"``) kills that pod -- terminal phase recorded, no result
    file -- exactly what a node-pressure eviction mid-sweep looks like to
    the backend.
    """

    def __init__(self, fault=None) -> None:
        self.fault = fault
        self.seq = 0
        self.jobs: dict = {}
        self.job_names: dict = {}
        self.job_dirs: dict = {}
        self.cancelled: list = []

    def submit(self, job_dir, spec, n_tasks) -> str:
        from repro.experiments.remote_worker import run_job

        self.seq += 1
        manifest = json.loads(Path(spec).read_text(encoding="utf-8"))
        name = manifest["metadata"]["name"]
        phases = {}
        for i in range(n_tasks):
            job = json.loads((job_dir / "tasks" / f"{i}.json").read_text())
            verdict = self.fault(self.seq, i, job) if self.fault else None
            if verdict:
                phases[i] = verdict
                continue
            envelope = run_job(job)
            (job_dir / "results" / f"{i}.json").write_text(json.dumps(envelope))
            phases[i] = "SUCCEEDED"
        self.jobs[name] = phases
        self.job_names[self.seq] = name
        self.job_dirs[name] = job_dir
        return name

    def poll(self, job_id: str) -> dict:
        return dict(self.jobs.get(job_id, {}))

    def cancel(self, target: str) -> None:
        self.cancelled.append(target)


def make_k8s_backend(spool, transport=None, **kwargs):
    """A fast-polling :class:`KubernetesBackend` over the in-memory transport."""
    from repro.experiments.backends import KubernetesBackend

    kwargs.setdefault("linger", 0.01)
    kwargs.setdefault("poll_interval", 0.01)
    return KubernetesBackend(
        transport=transport if transport is not None else InMemoryK8sTransport(),
        spool=Path(spool),
        **kwargs,
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fed() -> Federation:
    return make_federation()


def nid(cluster: int, node: int) -> NodeId:
    return NodeId(cluster, node)
